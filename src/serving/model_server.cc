#include "serving/model_server.h"

#include "util/arena.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>

#include "graph/eseller_graph.h"
#include "obs/obs.h"
#include "serving/checkpoint_store.h"
#include "ts/holt_winters.h"
#include "util/cancel.h"
#include "util/check.h"
#include "util/fault_injector.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gaia::serving {

namespace {

/// Serving metrics, resolved once. Only touched when obs::Enabled().
struct ServeMetrics {
  obs::Counter& requests = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_requests_total", "Predictions served (single + batch)");
  obs::Counter& batches = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_batches_total", "PredictBatch sweeps served");
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_latency_seconds", {},
      "Per-request forward latency (ego extraction + model forward)");
  obs::Histogram& ego_nodes = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_ego_nodes",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 12),
      "Ego-subgraph size per request, in nodes");
  static ServeMetrics& Get() {
    static ServeMetrics* metrics = new ServeMetrics();
    return *metrics;
  }
};

/// Failure-path metrics. Unlike the hot-path ServeMetrics these count
/// unconditionally — degradation events are rare and operators need them
/// even with GAIA_OBS off.
struct RobustMetrics {
  obs::Counter& fallbacks = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_fallback_served_total",
      "Requests answered by the Holt-Winters fallback instead of the model");
  obs::Counter& nonfinite = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_nonfinite_forwards_total",
      "Model forwards rejected because the output carried NaN/Inf");
  obs::Counter& deadline = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_deadline_exceeded_total",
      "Requests whose model forward overran the per-request deadline");
  obs::Counter& ego_failures = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_ego_extract_failures_total",
      "Requests whose ego-subgraph extraction failed");
  static RobustMetrics& Get() {
    static RobustMetrics* metrics = new RobustMetrics();
    return *metrics;
  }
};

/// Cancellation metrics, unconditional like RobustMetrics: a mid-flight
/// abort is an operational event worth counting with GAIA_OBS off.
struct CancelServeMetrics {
  obs::Histogram& latency_saved = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_cancel_latency_saved_seconds", {},
      "Estimated wall-clock saved per aborted forward: mean successful "
      "forward latency minus elapsed time at abort (an estimate; the "
      "counterfactual full forward is never run)");
  static CancelServeMetrics& Get() {
    static CancelServeMetrics* metrics = new CancelServeMetrics();
    return *metrics;
  }
};

std::string DeadlineReason(double deadline_ms, const char* detail) {
  return "deadline_exceeded (budget " + std::to_string(deadline_ms) +
         " ms, " + detail + ")";
}

/// Seed of the per-request ego-sampling stream: a splitmix64-style mix of
/// the server seed and the shop id. Giving every request its own stream
/// (instead of advancing one shared RNG in request order) is what makes a
/// forecast a pure function of (config, shop) — independent of request
/// interleaving, batch composition, shard assignment and thread count.
uint64_t RequestSeed(uint64_t seed, int32_t shop) {
  uint64_t x = seed ^ (static_cast<uint64_t>(static_cast<uint32_t>(shop)) *
                       0x9e3779b97f4a7c15ULL);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

void ObservePrediction(const ModelServer::Prediction& prediction) {
  if (!obs::Enabled()) return;
  ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests.Increment();
  metrics.latency.Observe(prediction.latency_ms * 1e-3);
  metrics.ego_nodes.Observe(static_cast<double>(prediction.ego_nodes));
}

/// Flight-recorder append for one served request. One relaxed load when the
/// log is disabled; never touches the numeric path.
void LogServedRequest(const ModelServer::Prediction& prediction,
                      const obs::RequestContext& ctx) {
  obs::EventLog& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  obs::EventRecord record;
  record.request_id = ctx.request_id;
  record.shop = prediction.shop;
  record.shard = ctx.shard;
  record.served_by =
      prediction.served_by == ModelServer::ServePath::kFallback ? 1u : 0u;
  record.queue_wait_ms = ctx.queue_wait_ms;
  record.latency_ms = prediction.latency_ms;
  std::strncpy(record.reason, prediction.degraded_reason.c_str(),
               sizeof(record.reason) - 1);
  log.Append(record);
}

}  // namespace

ModelServer::ModelServer(std::shared_ptr<core::GaiaModel> model,
                         std::shared_ptr<const data::ForecastDataset> dataset,
                         const ServerConfig& config)
    : model_(std::move(model)),
      dataset_(std::move(dataset)),
      config_(config) {
  GAIA_CHECK(model_ != nullptr);
  GAIA_CHECK(dataset_ != nullptr);
  if (config_.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config_.num_threads);
  }
}

std::vector<double> ModelServer::FallbackForecast(int32_t shop) const {
  GAIA_OBS_SPAN("server.fallback");
  const int64_t horizon = dataset_->horizon();
  std::vector<double> gmv(static_cast<size_t>(horizon), 0.0);
  if (!config_.fallback_enabled) return gmv;
  // The shop's own active history in normalized units (zeros before birth
  // carry no signal, so only the observed tail is fit).
  const Tensor& z = dataset_->z(shop);
  const int64_t t_len = dataset_->history_len();
  const int64_t active =
      std::min<int64_t>(dataset_->series_length(shop), t_len);
  std::vector<double> series;
  series.reserve(static_cast<size_t>(active));
  for (int64_t t = t_len - active; t < t_len; ++t) {
    series.push_back(static_cast<double>(z.at(t)));
  }
  if (series.empty()) return gmv;  // pure newcomer: zero forecast
  auto fit = ts::HoltWinters::Fit(series, ts::HoltWintersConfig{});
  if (!fit.ok()) return gmv;
  const std::vector<double> forecast =
      fit.value().Forecast(static_cast<int>(horizon));
  for (int64_t h = 0; h < horizon; ++h) {
    const double value = forecast[static_cast<size_t>(h)];
    if (!std::isfinite(value)) continue;
    // GMV is non-negative; an extrapolated downtrend is floored at zero.
    gmv[static_cast<size_t>(h)] =
        std::max(0.0, dataset_->Denormalize(shop, value));
  }
  return gmv;
}

ModelServer::Prediction ModelServer::PredictOne(
    int32_t shop, const graph::EgoSubgraph& ego, double deadline_ms) const {
  Stopwatch watch;
  Prediction prediction;
  prediction.shop = shop;
  prediction.ego_nodes = ego.num_nodes();

  std::string reason;
  bool model_ok = false;
  Tensor normalized;
  if (ego.nodes.empty()) {
    reason = "ego-subgraph extraction failed";
    RobustMetrics::Get().ego_failures.Increment();
  } else {
    util::FaultInjector& faults = util::FaultInjector::Global();
    // Arm the latency budget *before* the forward: the token is installed
    // for this thread (and re-installed on pool workers), so the kernels
    // abort at their next chunk boundary once it fires, instead of burning
    // the full forward and noticing afterwards.
    std::shared_ptr<util::CancelToken> token;
    std::optional<util::CancelScope> scope;
    if (deadline_ms > 0.0 && config_.cooperative_cancel) {
      token = util::CancelToken::Child(util::CancelToken::Current(),
                                       deadline_ms);
      scope.emplace(token.get());
    }
    std::optional<util::FaultKind> fault;
    if (faults.enabled()) {
      fault = faults.Sample("serving.forward");
      // Fault site "serving.cancel_delay": a forward stuck before its first
      // cooperative checkpoint. Hold the request until the token fires (or
      // a small cap, so un-armed requests are only briefly delayed), then
      // let the forward observe the fired token.
      if (faults.Sample("serving.cancel_delay").has_value()) {
        const double cap_ms = deadline_ms > 0.0 ? deadline_ms * 2.0 : 1.0;
        Stopwatch delay_watch;
        while (delay_watch.ElapsedMillis() < cap_ms) {
          if (token != nullptr && token->Cancelled()) break;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
    if (fault && *fault != util::FaultKind::kNan) {
      reason = util::FaultStatus(*fault, "serving.forward").ToString();
      if (*fault == util::FaultKind::kDeadline) {
        RobustMetrics::Get().deadline.Increment();
      }
    } else {
      Result<Tensor> forward = model_->PredictEgo(*dataset_, ego);
      if (!forward.ok()) {
        // kCancelled: the token fired and the forward unwound mid-flight.
        reason = DeadlineReason(deadline_ms, "aborted mid-forward");
        RobustMetrics::Get().deadline.Increment();
        util::NoteCancelObserved();
        // Estimate the wall-clock the abort saved against the running mean
        // of successful forwards (the counterfactual is never run).
        const int64_t count = model_forward_count_.load(std::memory_order_relaxed);
        if (count > 0) {
          const double mean_ms =
              static_cast<double>(
                  model_forward_us_total_.load(std::memory_order_relaxed)) *
              1e-3 / static_cast<double>(count);
          const double saved_ms = mean_ms - watch.ElapsedMillis();
          if (saved_ms > 0.0) {
            CancelServeMetrics::Get().latency_saved.Observe(saved_ms * 1e-3);
          }
        }
      } else {
        normalized = std::move(forward).value();
        if (fault && *fault == util::FaultKind::kNan) {
          // Poison the forward output: models the paper's anomalous-model
          // scenario where a bad checkpoint or input produces NaN scores.
          for (int64_t h = 0; h < normalized.size(); ++h) {
            normalized.data()[h] = std::nanf("");
          }
        }
        model_ok = true;
        for (int64_t h = 0; h < normalized.size(); ++h) {
          if (!std::isfinite(normalized.data()[h])) {
            reason = "non-finite model output";
            RobustMetrics::Get().nonfinite.Increment();
            model_ok = false;
            break;
          }
        }
        // Check-after-forward backstop: the only deadline check when
        // cooperative_cancel is off, and the safety net for a forward that
        // completed its last chunk just past the budget.
        if (model_ok && deadline_ms > 0.0 &&
            watch.ElapsedMillis() > deadline_ms) {
          reason = DeadlineReason(deadline_ms, "completed late");
          RobustMetrics::Get().deadline.Increment();
          model_ok = false;
        }
        if (model_ok) {
          model_forward_count_.fetch_add(1, std::memory_order_relaxed);
          model_forward_us_total_.fetch_add(
              static_cast<int64_t>(watch.ElapsedMillis() * 1e3),
              std::memory_order_relaxed);
        }
      }
    }
  }

  if (model_ok) {
    prediction.gmv.reserve(static_cast<size_t>(normalized.size()));
    for (int64_t h = 0; h < normalized.size(); ++h) {
      prediction.gmv.push_back(
          dataset_->Denormalize(shop, normalized.data()[h]));
    }
  } else {
    prediction.served_by = ServePath::kFallback;
    prediction.degraded_reason = reason;
    prediction.gmv = FallbackForecast(shop);
    RobustMetrics::Get().fallbacks.Increment();
  }
  prediction.latency_ms = watch.ElapsedMillis();
  return prediction;
}

ModelServer::Prediction ModelServer::Serve(int32_t shop,
                                           double deadline_ms) const {
  obs::RequestContext ctx;
  ctx.request_id = obs::NextRequestId();
  return Serve(shop, deadline_ms, ctx);
}

void ModelServer::EnableQuantileBands(core::QuantileBandTable table) {
  bands_ = std::make_shared<const core::QuantileBandTable>(std::move(table));
}

void ModelServer::ApplyQuantileBands(Prediction* prediction) const {
  const auto shop = static_cast<size_t>(prediction->shop);
  if (shop >= bands_->sigma.size()) return;
  const std::vector<double>& sigma = bands_->sigma[shop];
  const double inflate = prediction->served_by == ServePath::kFallback
                             ? bands_->degraded_inflation
                             : 1.0;
  const size_t horizon = prediction->gmv.size();
  prediction->p50 = prediction->gmv;
  prediction->p10.resize(horizon);
  prediction->p90.resize(horizon);
  for (size_t h = 0; h < horizon; ++h) {
    const double s = h < sigma.size() ? sigma[h] : 0.0;
    // Denormalize is purely multiplicative (value * scale(shop)), so a
    // normalized-units stddev denormalizes exactly like a forecast.
    const double width = std::max(
        bands_->scale * inflate *
            dataset_->Denormalize(prediction->shop, s),
        0.0);
    prediction->p10[h] = std::max(0.0, prediction->gmv[h] - width);
    prediction->p90[h] = prediction->gmv[h] + width;
  }
}

ModelServer::Prediction ModelServer::Serve(
    int32_t shop, double deadline_ms, const obs::RequestContext& ctx) const {
  // Arena scope for the whole request: in steady state the forward's tensor
  // buffers are all cache hits, so a Predict allocates ~nothing from the
  // system heap (see docs/PERFORMANCE.md).
  util::ArenaScope arena_scope;
  // Per-request RNG: the ego subgraph depends only on (config.seed, shop),
  // never on what was served before — see RequestSeed above.
  Rng rng(RequestSeed(config_.seed, shop));
  graph::EgoSubgraph ego =
      graph::ExtractEgoSubgraph(dataset_->graph(), shop, config_.ego_hops,
                                config_.max_fanout, &rng);
  Prediction prediction = PredictOne(shop, ego, deadline_ms);
  prediction.request_id = ctx.request_id;
  if (bands_ != nullptr) ApplyQuantileBands(&prediction);
  ObservePrediction(prediction);
  LogServedRequest(prediction, ctx);
  return prediction;
}

ModelServer::Prediction ModelServer::Predict(int32_t shop) {
  return Predict(shop, config_.deadline_ms);
}

ModelServer::Prediction ModelServer::Predict(int32_t shop,
                                             double deadline_ms) {
  GAIA_OBS_SPAN("server.predict");
  Prediction prediction = Serve(shop, deadline_ms);
  ++total_requests_;
  if (prediction.served_by == ServePath::kFallback) ++fallback_requests_;
  total_latency_ms_ += prediction.latency_ms;
  return prediction;
}

std::vector<ModelServer::Prediction> ModelServer::PredictBatch(
    const std::vector<int32_t>& shops) {
  GAIA_OBS_SPAN("server.predict_batch");
  if (obs::Enabled()) ServeMetrics::Get().batches.Increment();
  // The monthly sweep: requests fan out across the pool, one Serve call
  // (ego extraction + forward) per claimed thread. Per-request RNG keeps
  // every answer bitwise identical to a standalone Predict of the same
  // shop, at any thread count.
  std::vector<Prediction> out(shops.size());
  util::ParallelFor(static_cast<int64_t>(shops.size()), [&](int64_t i) {
    const auto idx = static_cast<size_t>(i);
    out[idx] = Serve(shops[idx], config_.deadline_ms);
  });
  for (const Prediction& prediction : out) {
    ++total_requests_;
    if (prediction.served_by == ServePath::kFallback) ++fallback_requests_;
    total_latency_ms_ += prediction.latency_ms;
  }
  return out;
}

Status ModelServer::LoadCheckpoint(const std::string& path) {
  GAIA_OBS_SPAN("server.load_checkpoint");
  // Module::Load is verify-then-swap, so a failed attempt (or exhausted
  // retry) leaves the serving weights untouched.
  return util::RetryCall(config_.checkpoint_retry,
                         [&] { return model_->Load(path); });
}

Status ModelServer::LoadCheckpoint(const CheckpointStore& store) {
  GAIA_OBS_SPAN("server.load_checkpoint");
  auto report = store.LoadLatestGood(model_.get());
  if (!report.ok()) return report.status();
  last_load_rollbacks_ = report.value().rollbacks;
  return Status::OK();
}

Result<std::shared_ptr<core::GaiaModel>> OfflineTrainingPipeline::Run(
    const data::ForecastDataset& dataset, RunReport* report) const {
  auto created = core::GaiaModel::Create(
      config_.model, dataset.history_len(), dataset.horizon(),
      dataset.temporal_dim(), dataset.static_dim());
  if (!created.ok()) return created.status();
  std::shared_ptr<core::GaiaModel> model = std::move(created).value();
  core::TrainResult train_result =
      core::Trainer(config_.train).Fit(model.get(), dataset);
  if (report != nullptr) {
    report->train = train_result;
    report->checkpoint_path = config_.checkpoint_path;
  }
  if (train_result.cancelled) {
    // A retrain that blew its budget publishes nothing: the checkpoint
    // store keeps the last good weights and the scheduler serves those
    // (its rollback path), so no half-trained model ever goes live.
    return Status::Cancelled("offline retrain aborted by deadline after " +
                             std::to_string(train_result.epochs_run) +
                             " epochs");
  }
  if (!config_.checkpoint_path.empty()) {
    GAIA_RETURN_NOT_OK(model->Save(config_.checkpoint_path));
  }
  return model;
}

}  // namespace gaia::serving
