#include "serving/model_server.h"

#include "graph/eseller_graph.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gaia::serving {

namespace {

/// Serving metrics, resolved once. Only touched when obs::Enabled().
struct ServeMetrics {
  obs::Counter& requests = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_requests_total", "Predictions served (single + batch)");
  obs::Counter& batches = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_batches_total", "PredictBatch sweeps served");
  obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_latency_seconds", {},
      "Per-request forward latency (ego extraction + model forward)");
  obs::Histogram& ego_nodes = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_ego_nodes",
      obs::Histogram::ExponentialBuckets(1.0, 2.0, 12),
      "Ego-subgraph size per request, in nodes");
  static ServeMetrics& Get() {
    static ServeMetrics* metrics = new ServeMetrics();
    return *metrics;
  }
};

void ObservePrediction(const ModelServer::Prediction& prediction) {
  if (!obs::Enabled()) return;
  ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests.Increment();
  metrics.latency.Observe(prediction.latency_ms * 1e-3);
  metrics.ego_nodes.Observe(static_cast<double>(prediction.ego_nodes));
}

}  // namespace

ModelServer::ModelServer(std::shared_ptr<core::GaiaModel> model,
                         std::shared_ptr<const data::ForecastDataset> dataset,
                         const ServerConfig& config)
    : model_(std::move(model)),
      dataset_(std::move(dataset)),
      config_(config),
      rng_(config.seed) {
  GAIA_CHECK(model_ != nullptr);
  GAIA_CHECK(dataset_ != nullptr);
  if (config_.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config_.num_threads);
  }
}

ModelServer::Prediction ModelServer::Predict(int32_t shop) {
  GAIA_OBS_SPAN("server.predict");
  Stopwatch watch;
  graph::EgoSubgraph ego =
      graph::ExtractEgoSubgraph(dataset_->graph(), shop, config_.ego_hops,
                                config_.max_fanout, &rng_);
  Tensor normalized = model_->PredictEgo(*dataset_, ego);
  Prediction prediction;
  prediction.shop = shop;
  prediction.gmv.reserve(static_cast<size_t>(normalized.size()));
  for (int64_t h = 0; h < normalized.size(); ++h) {
    prediction.gmv.push_back(
        dataset_->Denormalize(shop, normalized.data()[h]));
  }
  prediction.latency_ms = watch.ElapsedMillis();
  prediction.ego_nodes = ego.num_nodes();
  ObservePrediction(prediction);
  ++total_requests_;
  total_latency_ms_ += prediction.latency_ms;
  return prediction;
}

std::vector<ModelServer::Prediction> ModelServer::PredictBatch(
    const std::vector<int32_t>& shops) {
  GAIA_OBS_SPAN("server.predict_batch");
  if (obs::Enabled()) ServeMetrics::Get().batches.Increment();
  // The monthly sweep: ego extraction stays serial (it consumes rng_ in
  // request order, exactly as repeated Predict calls would), then the
  // per-shop model forwards — the dominant cost — fan out across the pool.
  std::vector<graph::EgoSubgraph> egos;
  egos.reserve(shops.size());
  for (int32_t shop : shops) {
    egos.push_back(graph::ExtractEgoSubgraph(dataset_->graph(), shop,
                                             config_.ego_hops,
                                             config_.max_fanout, &rng_));
  }
  std::vector<Prediction> out(shops.size());
  util::ParallelFor(static_cast<int64_t>(shops.size()), [&](int64_t i) {
    const auto idx = static_cast<size_t>(i);
    Stopwatch watch;
    Tensor normalized = model_->PredictEgo(*dataset_, egos[idx]);
    Prediction& prediction = out[idx];
    prediction.shop = shops[idx];
    prediction.gmv.reserve(static_cast<size_t>(normalized.size()));
    for (int64_t h = 0; h < normalized.size(); ++h) {
      prediction.gmv.push_back(
          dataset_->Denormalize(shops[idx], normalized.data()[h]));
    }
    prediction.latency_ms = watch.ElapsedMillis();
    prediction.ego_nodes = egos[idx].num_nodes();
  });
  for (const Prediction& prediction : out) {
    ObservePrediction(prediction);
    ++total_requests_;
    total_latency_ms_ += prediction.latency_ms;
  }
  return out;
}

Status ModelServer::LoadCheckpoint(const std::string& path) {
  return model_->Load(path);
}

Result<std::shared_ptr<core::GaiaModel>> OfflineTrainingPipeline::Run(
    const data::ForecastDataset& dataset, RunReport* report) const {
  auto created = core::GaiaModel::Create(
      config_.model, dataset.history_len(), dataset.horizon(),
      dataset.temporal_dim(), dataset.static_dim());
  if (!created.ok()) return created.status();
  std::shared_ptr<core::GaiaModel> model = std::move(created).value();
  core::TrainResult train_result =
      core::Trainer(config_.train).Fit(model.get(), dataset);
  if (!config_.checkpoint_path.empty()) {
    GAIA_RETURN_NOT_OK(model->Save(config_.checkpoint_path));
  }
  if (report != nullptr) {
    report->train = train_result;
    report->checkpoint_path = config_.checkpoint_path;
  }
  return model;
}

}  // namespace gaia::serving
