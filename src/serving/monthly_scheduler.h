#ifndef GAIA_SERVING_MONTHLY_SCHEDULER_H_
#define GAIA_SERVING_MONTHLY_SCHEDULER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "data/market_simulator.h"
#include "serving/checkpoint_store.h"
#include "serving/model_server.h"

namespace gaia::serving {

/// \brief Simulation of the paper's monthly pipeline schedule (§VI): each
/// cycle the e-seller graph and features are re-extracted (a fresh market
/// snapshot), Gaia is retrained offline, the checkpoint is published, and
/// the online server hot-swaps to it.
///
/// Each cycle advances the market by one month: the calendar start shifts
/// and the shop/graph population is redrawn (shops open and close, relations
/// change), which is exactly the "ever-changing graph structure" the paper
/// reschedules for.
///
/// Fault tolerance: a broken cycle (market failure, failed retrain, corrupt
/// checkpoint publish) no longer aborts the run. The cycle is reported
/// unhealthy, serving falls back to the newest good checkpoint in the store
/// (rollback), and the schedule moves on — Run only fails when *no* cycle
/// manages to serve.
class MonthlyScheduler {
 public:
  struct Config {
    data::MarketConfig market;              ///< base market snapshot
    OfflineTrainingPipeline::Config offline;
    ServerConfig server;
    int num_cycles = 3;
    /// When non-empty, checkpoints are published through a CheckpointStore
    /// rooted here (atomic publish, verification, last-N history, rollback).
    /// Empty keeps the legacy single-file publish via
    /// offline.checkpoint_path.
    std::string checkpoint_dir;
    int checkpoint_keep = 3;  ///< store history depth (checkpoint_dir mode)
    /// Wall-clock budget for each cycle's offline retrain in milliseconds
    /// (0 = none). Armed as a util::CancelToken around the pipeline run, so
    /// an overrunning retrain aborts mid-epoch (at a parameter-consistent
    /// point), publishes nothing, and the cycle serves the last good
    /// checkpoint via the rollback path.
    double train_deadline_ms = 0.0;
    /// Trailing window (in served cycles) for the online drift score: each
    /// cycle's forecast MAE is compared against the mean MAE of the last N
    /// healthy served cycles and the relative excess is exported as
    /// `gaia_drift_score`. Rolled-back cycles are scored but never enter
    /// the window (their MAE reflects stale weights, not the market).
    /// <= 0 disables the tracker and the trigger below.
    int drift_window_cycles = 3;
    /// Adversarial regime layered on every cycle's market snapshot (the
    /// same script replays against each month's redrawn population). An
    /// empty script leaves the schedule bitwise identical to older builds.
    data::RegimeScript regime;
    /// First cycle the regime applies to (earlier cycles generate plain
    /// markets). Lets a scenario script a regime *onset* mid-run — clean
    /// baseline cycles followed by the shock — which is what makes the
    /// drift trigger below fire deterministically. 0 = every cycle.
    int regime_from_cycle = 0;
    /// Drift-triggered early retrain: when a served cycle's drift_score
    /// exceeds this threshold, the cycle immediately retrains on the same
    /// snapshot and hot-swaps the result — serving every probe request from
    /// the incumbent weights while the retrain runs, so Predict never fails
    /// mid-retrain. <= 0 disables the trigger (the default; bitwise
    /// identical to older builds).
    double drift_trigger_threshold = 0.0;
    /// Cycles that must pass after a drift retrain before another may fire;
    /// triggers inside the window are counted as suppressed
    /// (gaia_drift_retrains_suppressed_total) and do not retrain.
    int drift_retrain_cooldown_cycles = 2;
  };

  struct CycleReport {
    int cycle = 0;
    int calendar_start_month = 0;           ///< month-0 calendar of snapshot
    core::TrainResult train;
    core::EvaluationReport online;          ///< served forecasts vs truth
    double mean_latency_ms = 0.0;
    int64_t graph_edges = 0;
    // --- per-cycle health ---------------------------------------------------
    bool healthy = true;      ///< every step of the cycle succeeded
    bool trained = false;     ///< offline retrain completed
    bool served = false;      ///< online requests were answered
    bool rolled_back = false; ///< served an older checkpoint than this cycle's
    int64_t fallback_requests = 0;  ///< requests degraded to the fallback
    std::string checkpoint_path;    ///< checkpoint that served this cycle
    Status error;             ///< first failure observed (OK when healthy)
    // --- online drift (served cycles only) ----------------------------------
    /// Relative excess of this cycle's online MAE over the trailing-window
    /// mean: (mae - baseline) / baseline. 0 for the first served cycle
    /// (no baseline yet) and for unserved cycles; positive = drifting worse.
    double drift_score = 0.0;
    /// The trailing-window mean MAE this cycle was scored against (0 when
    /// no baseline existed yet).
    double drift_baseline_mae = 0.0;
    // --- drift-triggered retrain (threshold mode only) -----------------------
    bool drift_triggered = false;   ///< score exceeded the trigger threshold
    bool drift_suppressed = false;  ///< trigger landed in cooldown; no retrain
    bool drift_retrained = false;   ///< early retrain completed and was adopted
    /// Availability probe served concurrently with the early retrain: every
    /// test shop is requested once against the incumbent weights.
    int64_t during_retrain_requests = 0;
    /// Of those, answers carrying a full-horizon forecast (the "Predict
    /// never fails mid-retrain" invariant expects this to equal requests).
    int64_t during_retrain_answered = 0;
    /// Online MAE re-measured after the early retrain's weights were
    /// adopted; this is what enters the drift window for the cycle.
    double post_retrain_mae = 0.0;
  };

  explicit MonthlyScheduler(const Config& config) : config_(config) {}

  /// Runs all cycles, skipping broken ones. Returns one report per cycle
  /// (including unhealthy ones); fails only when no cycle served at all.
  Result<std::vector<CycleReport>> Run() const;

 private:
  Config config_;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_MONTHLY_SCHEDULER_H_
