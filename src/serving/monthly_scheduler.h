#ifndef GAIA_SERVING_MONTHLY_SCHEDULER_H_
#define GAIA_SERVING_MONTHLY_SCHEDULER_H_

#include <memory>
#include <vector>

#include "core/evaluator.h"
#include "data/market_simulator.h"
#include "serving/model_server.h"

namespace gaia::serving {

/// \brief Simulation of the paper's monthly pipeline schedule (§VI): each
/// cycle the e-seller graph and features are re-extracted (a fresh market
/// snapshot), Gaia is retrained offline, the checkpoint is published, and
/// the online server hot-swaps to it.
///
/// Each cycle advances the market by one month: the calendar start shifts
/// and the shop/graph population is redrawn (shops open and close, relations
/// change), which is exactly the "ever-changing graph structure" the paper
/// reschedules for.
class MonthlyScheduler {
 public:
  struct Config {
    data::MarketConfig market;              ///< base market snapshot
    OfflineTrainingPipeline::Config offline;
    ServerConfig server;
    int num_cycles = 3;
  };

  struct CycleReport {
    int cycle = 0;
    int calendar_start_month = 0;           ///< month-0 calendar of snapshot
    core::TrainResult train;
    core::EvaluationReport online;          ///< served forecasts vs truth
    double mean_latency_ms = 0.0;
    int64_t graph_edges = 0;
  };

  explicit MonthlyScheduler(const Config& config) : config_(config) {}

  /// Runs all cycles; fails fast on the first broken cycle.
  Result<std::vector<CycleReport>> Run() const;

 private:
  Config config_;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_MONTHLY_SCHEDULER_H_
