#ifndef GAIA_SERVING_CHECKPOINT_STORE_H_
#define GAIA_SERVING_CHECKPOINT_STORE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/retry.h"
#include "util/status.h"

namespace gaia::serving {

/// \brief Configuration of the versioned checkpoint directory.
struct CheckpointStoreConfig {
  std::string dir;    ///< directory holding ckpt-<seq>.bin files
  int keep_last = 3;  ///< good checkpoints retained (older ones pruned)
  /// Per-candidate load retry (transient I/O); corruption is not retried —
  /// the store rolls back to the previous checkpoint instead.
  util::RetryPolicy retry;
};

/// \brief Keeps the last-N good checkpoints so serving can roll back.
///
/// The offline pipeline publishes into the store (atomic write + file-level
/// verification: a corrupt publish never enters the history); the online
/// server loads "the newest good checkpoint": candidates are tried newest to
/// oldest, transient errors retried with backoff, corrupt files skipped with
/// a gaia_robust_checkpoint_rollbacks_total tick. Because nn::Module::Load
/// is all-or-nothing, a failed candidate never perturbs the live weights.
///
/// Not thread-safe: the monthly scheduler publishes and swaps from one
/// thread, matching the paper's single offline pipeline.
class CheckpointStore {
 public:
  /// Creates `config.dir` if needed and adopts any ckpt-<seq>.bin files
  /// already present (restart recovery), ordered by sequence number.
  explicit CheckpointStore(const CheckpointStoreConfig& config);

  /// Saves `module` as the next ckpt-<seq>.bin, verifies the written file,
  /// and prunes beyond keep_last. On verification failure the bad file is
  /// deleted, the history is unchanged and the error is returned — the
  /// previous checkpoint stays the newest good one.
  Result<std::string> Publish(const nn::Module& module);

  /// Outcome of a LoadLatestGood call.
  struct LoadReport {
    std::string path;   ///< checkpoint actually applied
    int rollbacks = 0;  ///< newer checkpoints skipped as bad
  };

  /// Loads the newest checkpoint that both survives its retry policy and
  /// passes Module::Load verification, rolling back through history until
  /// one applies. Fails with the last error when none does.
  Result<LoadReport> LoadLatestGood(nn::Module* module) const;

  /// Registers an externally produced checkpoint file as the newest entry.
  Status Adopt(const std::string& path);

  /// Known checkpoint paths, oldest first.
  const std::vector<std::string>& history() const { return history_; }
  const std::string& dir() const { return config_.dir; }

 private:
  std::string PathForSeq(int64_t seq) const;

  CheckpointStoreConfig config_;
  std::vector<std::string> history_;  ///< oldest .. newest
  int64_t next_seq_ = 0;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_CHECKPOINT_STORE_H_
