#ifndef GAIA_SERVING_CHECKPOINT_STORE_H_
#define GAIA_SERVING_CHECKPOINT_STORE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/retry.h"
#include "util/status.h"

namespace gaia::serving {

/// \brief Configuration of the versioned checkpoint directory.
struct CheckpointStoreConfig {
  std::string dir;    ///< directory holding ckpt-<seq>.bin files
  int keep_last = 3;  ///< good checkpoints retained (older ones pruned)
  /// Per-candidate load retry (transient I/O); corruption is not retried —
  /// the store rolls back to the previous checkpoint instead.
  util::RetryPolicy retry;
  /// Guard Publish with the cross-process lockfile (see PublishLock below).
  /// A publish attempted while another process holds the lock returns
  /// kUnavailable (retryable) without touching the history.
  bool use_lockfile = true;
};

/// \brief Advisory cross-process lock on a checkpoint directory.
///
/// Backs the serve/retrain process split: the retraining process holds the
/// lock while publishing so two retrainers cannot interleave sequence
/// numbers or manifest writes. Serving processes never take it — adoption
/// reads the manifest, whose tmp+rename publish is atomic on POSIX.
///
/// Implementation: O_CREAT|O_EXCL creation of `<dir>/store.lock` holding the
/// owner pid. A lock left behind by a dead process (pid no longer running)
/// is detected and broken on the next acquisition attempt.
class PublishLock {
 public:
  /// Tries to take the lock; kUnavailable when live-held by someone else.
  static Result<PublishLock> Acquire(const std::string& dir);

  PublishLock(PublishLock&& other) noexcept;
  PublishLock& operator=(PublishLock&& other) noexcept;
  PublishLock(const PublishLock&) = delete;
  PublishLock& operator=(const PublishLock&) = delete;
  /// Releases (removes the lockfile).
  ~PublishLock();

  const std::string& path() const { return path_; }

 private:
  explicit PublishLock(std::string path) : path_(std::move(path)) {}
  std::string path_;  ///< empty after a move (released elsewhere)
};

/// \brief Keeps the last-N good checkpoints so serving can roll back.
///
/// The offline pipeline publishes into the store (atomic write + file-level
/// verification: a corrupt publish never enters the history); the online
/// server loads "the newest good checkpoint": candidates are tried newest to
/// oldest, transient errors retried with backoff, corrupt files skipped with
/// a gaia_robust_checkpoint_rollbacks_total tick. Because nn::Module::Load
/// is all-or-nothing, a failed candidate never perturbs the live weights.
///
/// Every history mutation also publishes `manifest.json`
/// (gaia.checkpoint_manifest/1, written atomically via tmp+rename): the
/// next sequence number plus the good history, oldest first. A fresh store
/// — typically the serving process adopting what a separate retraining
/// process published — reads the manifest for O(1) adoption instead of
/// scanning and ordering the directory; a missing or corrupt manifest falls
/// back to the directory scan, and entries whose files have vanished are
/// dropped. Rollback still verifies each candidate, so a manifest whose
/// newest entry was corrupted on disk rolls back exactly like a scanned
/// history would.
///
/// Not thread-safe within a process: the monthly scheduler publishes and
/// swaps from one thread, matching the paper's single offline pipeline.
/// Across processes, Publish takes the PublishLock (config.use_lockfile).
class CheckpointStore {
 public:
  /// Creates `config.dir` if needed and adopts the manifest history (or, on
  /// a missing/corrupt manifest, any ckpt-<seq>.bin files present), ordered
  /// by sequence number.
  explicit CheckpointStore(const CheckpointStoreConfig& config);

  /// Saves `module` as the next ckpt-<seq>.bin, verifies the written file,
  /// prunes beyond keep_last and publishes the refreshed manifest. On
  /// verification failure the bad file is deleted, the history is unchanged
  /// and the error is returned — the previous checkpoint stays the newest
  /// good one.
  Result<std::string> Publish(const nn::Module& module);

  /// Outcome of a LoadLatestGood call.
  struct LoadReport {
    std::string path;   ///< checkpoint actually applied
    int rollbacks = 0;  ///< newer checkpoints skipped as bad
  };

  /// Loads the newest checkpoint that both survives its retry policy and
  /// passes Module::Load verification, rolling back through history until
  /// one applies. Fails with the last error when none does.
  Result<LoadReport> LoadLatestGood(nn::Module* module) const;

  /// Registers an externally produced checkpoint file as the newest entry.
  Status Adopt(const std::string& path);

  /// Known checkpoint paths, oldest first.
  const std::vector<std::string>& history() const { return history_; }
  const std::string& dir() const { return config_.dir; }
  /// True when construction adopted the history from manifest.json rather
  /// than a directory scan (exposed for tests and diagnostics).
  bool adopted_from_manifest() const { return adopted_from_manifest_; }

  /// Path of the manifest this store maintains.
  std::string ManifestPath() const;

 private:
  std::string PathForSeq(int64_t seq) const;
  /// Serializes + atomically replaces manifest.json. Best-effort: a failed
  /// manifest write degrades the *next* adoption to a directory scan but
  /// never fails the publish that triggered it.
  void WriteManifest() const;
  /// Parses manifest.json into history_/next_seq_. False on any problem.
  bool AdoptFromManifest();
  void AdoptFromScan();

  CheckpointStoreConfig config_;
  std::vector<std::string> history_;  ///< oldest .. newest
  int64_t next_seq_ = 0;
  bool adopted_from_manifest_ = false;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_CHECKPOINT_STORE_H_
