#ifndef GAIA_SERVING_SHARDED_SERVER_H_
#define GAIA_SERVING_SHARDED_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/partitioner.h"
#include "serving/model_server.h"
#include "util/cancel.h"
#include "util/mpmc_queue.h"
#include "util/status.h"

namespace gaia::obs {
class Counter;
class Gauge;
}  // namespace gaia::obs

namespace gaia::serving {

class CheckpointStore;

/// \brief Configuration of the sharded serving tier.
struct ShardedServerConfig {
  /// Shards the e-seller graph is partitioned into; one worker thread and
  /// one micro-batch queue per shard.
  int num_shards = 1;
  /// Micro-batch window flushes when this many requests have coalesced...
  int max_batch = 8;
  /// ...or this much wall-clock has passed since the window opened,
  /// whichever comes first. 0 serves each request as soon as it is popped
  /// (window of one unless requests are already queued).
  double max_wait_us = 200.0;
  /// Bound of each shard's request queue; a full queue back-pressures
  /// Predict callers (Push blocks) instead of growing without limit.
  size_t queue_capacity = 1024;
  /// How shops map to shards. Hash today; the Partitioner interface admits
  /// community/METIS partitioning later without touching this tier.
  graph::PartitionStrategy partition = graph::PartitionStrategy::kHash;
  /// Per-generation ModelServer config (ego sampling, deadlines, fallback).
  /// num_threads is forced to 0 for the internal servers — the sharded tier
  /// owns its threading (see class comment).
  ServerConfig server;
};

/// \brief Sharded concurrent serving tier: K shards, micro-batching, and
/// RCU-style checkpoint swap (the "online serving" half of the paper's
/// hybrid architecture, scaled out).
///
/// The e-seller graph is partitioned by shop id into `num_shards` shards.
/// Each shard owns a bounded MPMC queue and one worker thread: concurrent
/// Predict calls enqueue onto their shop's shard and the worker coalesces
/// them into micro-batch windows (flush on `max_batch` or `max_wait_us`,
/// whichever first), serving each window against a single generation
/// snapshot. Parallelism comes from the K shard workers running
/// concurrently; inside a worker, forwards run inline (serially) via
/// util::ThreadPool::InlineScope, so shard workers never contend on the
/// process-wide pool — and because the inline path is the exact serial
/// path, forecasts are bitwise identical to the unsharded
/// ModelServer::PredictBatch at any shard/thread count (each forecast is a
/// pure function of (config, shop); see ServerConfig::seed).
///
/// Checkpoint swap is epoch/RCU-style: LoadCheckpoint builds a *fresh*
/// model generation off to the side (load + verify into an unpublished
/// model), wraps it in its own ModelServer, and flips each shard's
/// generation cell — a mutex-guarded shared_ptr exchange. Workers snapshot
/// the cell once per window, so readers never block on a retrain and every
/// in-flight window finishes entirely on the generation it started with:
/// a request observes the old generation or the new one, never a torn mix.
/// Old generations are reclaimed by shared_ptr count when their last
/// window drains.
///
/// Request lifecycle inside a window, per request:
///   1. queue-wait recorded (gaia_serve_queue_wait_seconds);
///   2. a request whose CancelToken fired while queued is dropped before
///      the forward (degraded_reason "cancelled while queued",
///      gaia_serve_cancelled_in_queue_total, NoteCancelObserved) — the rest
///      of the window is unaffected;
///   3. a request whose deadline budget was consumed while queued degrades
///      straight to the fallback (reason prefix "deadline_exceeded");
///   4. otherwise the remaining budget is armed and the forward runs under
///      the request's token (mid-flight aborts degrade as in ModelServer).
///
/// Thread-safety: Predict/PredictBatch are safe from any number of threads.
/// LoadCheckpoint may run concurrently with serving (that is the point) but
/// publishes are serialized against each other by an internal mutex. Stop
/// drains the queues (every accepted request is answered) and joins the
/// workers; requests arriving after Stop are served inline on the caller.
class ShardedServer {
 public:
  using Prediction = ModelServer::Prediction;

  ShardedServer(std::shared_ptr<core::GaiaModel> model,
                std::shared_ptr<const data::ForecastDataset> dataset,
                const ShardedServerConfig& config);
  ~ShardedServer();
  ShardedServer(const ShardedServer&) = delete;
  ShardedServer& operator=(const ShardedServer&) = delete;

  /// Serves one request through its shard's micro-batch queue. Blocks until
  /// answered (or until back-pressure admits the request). Never fails —
  /// the degradation ladder is the same as ModelServer's.
  Prediction Predict(int32_t shop);

  /// Same, with a per-request deadline (0 = none) and an optional
  /// cancellation token. The deadline covers queue wait + forward: budget
  /// consumed while queued is subtracted from what the forward gets. The
  /// token must outlive the call; cancelling it while the request waits in
  /// the queue drops the request before the forward.
  Prediction Predict(int32_t shop, double deadline_ms,
                     const util::CancelToken* cancel = nullptr);

  /// Enqueues the whole batch across shards, then gathers answers in input
  /// order. Bitwise identical to ModelServer::PredictBatch on the same
  /// (model, dataset, server config) at any shard/thread count.
  std::vector<Prediction> PredictBatch(const std::vector<int32_t>& shops);

  /// RCU publish from a checkpoint file: load + verify into a fresh
  /// generation, then flip every shard's cell. Serving continues on the old
  /// generation throughout; on any failure nothing is flipped.
  Status LoadCheckpoint(const std::string& path);

  /// Same, adopting the newest good checkpoint from a store (rolling back
  /// through its history like ModelServer::LoadCheckpoint).
  Status LoadCheckpoint(const CheckpointStore& store);

  /// Installs a calibrated band table (core::CalibrateQuantileBands) on the
  /// live generation and on every generation published after this call:
  /// answers from any shard carry p10/p50/p90 identical to an unsharded
  /// ModelServer with the same table. Serialized against publishes; the
  /// swap is the usual RCU flip (same epoch number), so in-flight windows
  /// finish on the band-less generation and later ones carry bands.
  void EnableQuantileBands(core::QuantileBandTable table);

  /// Closes the shard queues, answers everything already accepted, joins
  /// the workers. Idempotent; the destructor calls it.
  void Stop();

  int num_shards() const { return config_.num_shards; }
  /// Shard a shop's requests are routed to (stable across processes).
  int ShardOf(int32_t shop) const { return partitioner_->ShardOf(shop); }
  /// Requests answered since construction (all paths, all shards).
  int64_t total_requests() const {
    return total_requests_.load(std::memory_order_relaxed);
  }
  /// Requests answered by the fallback rung.
  int64_t fallback_requests() const {
    return fallback_requests_.load(std::memory_order_relaxed);
  }
  /// Generation number: 0 for the construction model, +1 per successful
  /// LoadCheckpoint flip.
  int64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  /// Checkpoints skipped as bad during the most recent store load.
  int last_load_rollbacks() const { return last_load_rollbacks_; }

 private:
  /// One immutable serving generation: the model plus the ModelServer
  /// wrapping it. Reader threads hold it via shared_ptr for a whole window.
  struct Generation {
    std::shared_ptr<core::GaiaModel> model;
    std::unique_ptr<const ModelServer> server;
    int64_t epoch = 0;
  };

  /// Mutex-guarded shared_ptr cell, one per shard. The mutex only covers
  /// the pointer exchange (nanoseconds), never a load or a forward — this
  /// is the epoch/RCU discipline: writers swap, readers pin a snapshot.
  struct GenerationCell {
    mutable std::mutex mu;
    std::shared_ptr<const Generation> generation;

    std::shared_ptr<const Generation> Load() const {
      std::lock_guard<std::mutex> lock(mu);
      return generation;
    }
    void Store(std::shared_ptr<const Generation> next) {
      std::lock_guard<std::mutex> lock(mu);
      generation = std::move(next);
    }
  };

  /// A request parked in a shard queue awaiting its micro-batch window.
  struct PendingRequest {
    int32_t shop = 0;
    double deadline_ms = 0.0;  ///< 0 = no deadline
    const util::CancelToken* cancel = nullptr;
    /// Correlation id assigned at Submit; stamped on the answer and into
    /// the obs::EventLog record together with queue wait and shard.
    uint64_t request_id = 0;
    std::chrono::steady_clock::time_point enqueued_at;
    std::promise<Prediction> promise;
  };

  /// Per-shard state. Queue + worker + generation cell + counters. The
  /// metric pointers (gaia_serve_shard_<k>_*) are registry-owned and live
  /// for the process; they are resolved once at construction.
  struct Shard {
    std::unique_ptr<util::MpmcQueue<std::unique_ptr<PendingRequest>>> queue;
    std::thread worker;
    GenerationCell cell;
    std::atomic<int64_t> requests{0};
    obs::Counter* requests_total = nullptr;
    obs::Counter* windows_total = nullptr;
    obs::Gauge* queue_depth = nullptr;
  };

  /// Builds a Generation around an already-loaded model.
  std::shared_ptr<const Generation> MakeGeneration(
      std::shared_ptr<core::GaiaModel> model, int64_t epoch) const;
  /// Flips every shard cell to `next` and bumps the epoch.
  void FlipGenerations(std::shared_ptr<const Generation> next);
  /// Creates an unpublished model with this tier's dimensions, ready for a
  /// checkpoint load.
  Result<std::shared_ptr<core::GaiaModel>> NewEmptyModel() const;

  /// Enqueues one request; serves inline on the caller when the tier has
  /// stopped (queues closed).
  std::future<Prediction> Submit(int32_t shop, double deadline_ms,
                                 const util::CancelToken* cancel);
  /// Shard worker main loop: pop, open window, flush, serve, repeat.
  void WorkerLoop(int shard_index);
  /// Serves one micro-batch window against one generation snapshot.
  void ServeWindow(int shard_index,
                   std::vector<std::unique_ptr<PendingRequest>>& window);
  /// Answers one request (steps 1-4 of the lifecycle above) using `gen`.
  /// `shard_index` only tags the request's flight-recorder record.
  Prediction ServeOne(const Generation& gen, PendingRequest& request,
                      int shard_index);
  void RecordAnswer(int shard_index, const Prediction& prediction);

  ShardedServerConfig config_;
  std::shared_ptr<const data::ForecastDataset> dataset_;
  std::unique_ptr<graph::Partitioner> partitioner_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::mutex publish_mu_;  ///< serializes LoadCheckpoint publishers
  /// Band table stamped onto every generation built after installation.
  /// Written under publish_mu_; read by MakeGeneration (also under the
  /// mutex, or during construction before any worker exists).
  std::shared_ptr<const core::QuantileBandTable> bands_;
  std::atomic<int64_t> epoch_{0};
  std::atomic<int64_t> total_requests_{0};
  std::atomic<int64_t> fallback_requests_{0};
  int last_load_rollbacks_ = 0;
  std::atomic<bool> stopped_{false};
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_SHARDED_SERVER_H_
