#include "serving/checkpoint_store.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "obs/obs.h"
#include "util/check.h"

namespace gaia::serving {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".bin";
constexpr char kManifestName[] = "manifest.json";
constexpr char kLockName[] = "store.lock";
constexpr char kManifestSchema[] = "gaia.checkpoint_manifest/1";

struct StoreMetrics {
  obs::Counter& published = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoints_published_total",
      "Checkpoints published and verified into the store");
  obs::Counter& publish_failures = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_publish_failures_total",
      "Publishes rejected (write fault or failed verification)");
  obs::Counter& rollbacks = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_rollbacks_total",
      "Bad checkpoints skipped while rolling back to the last good one");
  obs::Counter& lock_conflicts = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_lock_conflicts_total",
      "Publishes refused because another live process held the store lock");
  obs::Counter& locks_broken = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_lock_broken_total",
      "Stale store locks broken because their holder pid was dead");
  static StoreMetrics& Get() {
    static StoreMetrics* metrics = new StoreMetrics();
    return *metrics;
  }
};

/// Parses the sequence number out of "ckpt-000042.bin"; -1 when not ours.
int64_t SeqFromFilename(const std::string& filename) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.rfind(kPrefix, 0) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) !=
      0) {
    return -1;
  }
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::stoll(digits);
}

/// Escapes a string for embedding in the manifest. Checkpoint basenames are
/// our own ckpt-NNNNNN.bin pattern, but adopted paths can hold anything.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Pulls the JSON string value following `"key":` out of `text`; empty
/// optional when absent. Tolerant scanner, not a general JSON parser — the
/// manifest is machine-written with known shape, and any deviation simply
/// fails adoption over to the directory scan.
std::optional<std::string> FindStringField(const std::string& text,
                                           const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  pos = text.find('"', pos + 1);
  if (pos == std::string::npos) return std::nullopt;
  std::string value;
  for (size_t i = pos + 1; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      value.push_back(text[++i]);
    } else if (text[i] == '"') {
      return value;
    } else {
      value.push_back(text[i]);
    }
  }
  return std::nullopt;
}

std::optional<int64_t> FindIntField(const std::string& text,
                                    const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  ++pos;
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-')) {
    ++end;
  }
  if (end == pos) return std::nullopt;
  try {
    return std::stoll(text.substr(pos, end - pos));
  } catch (...) {
    return std::nullopt;
  }
}

/// Extracts the string array following `"key":` — the manifest history.
std::optional<std::vector<std::string>> FindStringArray(
    const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = text.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  pos = text.find('[', pos + needle.size());
  if (pos == std::string::npos) return std::nullopt;
  std::vector<std::string> items;
  size_t i = pos + 1;
  while (i < text.size() && text[i] != ']') {
    if (text[i] == '"') {
      std::string value;
      ++i;
      while (i < text.size() && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < text.size()) ++i;
        value.push_back(text[i]);
        ++i;
      }
      if (i >= text.size()) return std::nullopt;  // unterminated string
      items.push_back(std::move(value));
    }
    ++i;
  }
  if (i >= text.size()) return std::nullopt;  // unterminated array
  return items;
}

/// True when `pid` names a process that is still alive (or that we cannot
/// inspect — permission errors err on the safe side and keep the lock).
bool PidAlive(long long pid) {
  if (pid <= 0) return false;
  if (kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
}

}  // namespace

// ---------------------------------------------------------------------------
// PublishLock
// ---------------------------------------------------------------------------

Result<PublishLock> PublishLock::Acquire(const std::string& dir) {
  const std::string path = dir + "/" + kLockName;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const std::string body = std::to_string(::getpid()) + "\n";
      // Short write is tolerable: the pid is advisory stale-detection data.
      (void)!::write(fd, body.data(), body.size());
      ::close(fd);
      return PublishLock(path);
    }
    if (errno != EEXIST) {
      return Status::IoError("cannot create lockfile " + path + ": " +
                             std::strerror(errno));
    }
    // Held by someone. Break it only if that holder is provably dead.
    long long holder = -1;
    {
      std::ifstream in(path);
      if (in) in >> holder;
    }
    if (PidAlive(holder)) {
      StoreMetrics::Get().lock_conflicts.Increment();
      return Status::Unavailable("checkpoint store locked by pid " +
                                 std::to_string(holder) + ": " + path);
    }
    // Breaking a dead holder's lock is a takeover operators must be able
    // to audit: count it unconditionally and name the stale pid.
    StoreMetrics::Get().locks_broken.Increment();
    std::cerr << "[checkpoint_store] breaking stale lock " << path
              << " held by dead pid " << holder << "\n";
    std::remove(path.c_str());
    // Loop once more to race for the now-free lock.
  }
  StoreMetrics::Get().lock_conflicts.Increment();
  return Status::Unavailable("checkpoint store lock contended: " + path);
}

PublishLock::PublishLock(PublishLock&& other) noexcept
    : path_(std::move(other.path_)) {
  other.path_.clear();
}

PublishLock& PublishLock::operator=(PublishLock&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) std::remove(path_.c_str());
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

PublishLock::~PublishLock() {
  if (!path_.empty()) std::remove(path_.c_str());
}

// ---------------------------------------------------------------------------
// CheckpointStore
// ---------------------------------------------------------------------------

CheckpointStore::CheckpointStore(const CheckpointStoreConfig& config)
    : config_(config) {
  GAIA_CHECK(!config_.dir.empty());
  GAIA_CHECK(config_.keep_last >= 1);
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  adopted_from_manifest_ = AdoptFromManifest();
  if (!adopted_from_manifest_) AdoptFromScan();
}

std::string CheckpointStore::ManifestPath() const {
  return config_.dir + "/" + kManifestName;
}

std::string CheckpointStore::PathForSeq(int64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06lld%s", kPrefix,
                static_cast<long long>(seq), kSuffix);
  return config_.dir + "/" + name;
}

bool CheckpointStore::AdoptFromManifest() {
  std::ifstream in(ManifestPath());
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto schema = FindStringField(text, "schema");
  if (!schema || *schema != kManifestSchema) return false;
  const auto next_seq = FindIntField(text, "next_seq");
  const auto names = FindStringArray(text, "history");
  if (!next_seq || !names) return false;
  history_.clear();
  for (const auto& name : *names) {
    // Entries are basenames relative to the store dir; absolute entries
    // (adopted external checkpoints) pass through untouched. Vanished files
    // are dropped rather than served as phantom rollback candidates.
    const std::string path =
        (!name.empty() && name.front() == '/') ? name
                                               : config_.dir + "/" + name;
    std::error_code ec;
    if (fs::exists(path, ec)) history_.push_back(path);
  }
  next_seq_ = std::max<int64_t>(0, *next_seq);
  // A manifest that lists nothing usable but sits next to real checkpoint
  // files is stale/corrupt in spirit; let the scan recover them.
  if (history_.empty() && *next_seq == 0) return false;
  return true;
}

void CheckpointStore::AdoptFromScan() {
  history_.clear();
  next_seq_ = 0;
  std::error_code ec;
  std::vector<std::pair<int64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const int64_t seq = SeqFromFilename(entry.path().filename().string());
    if (seq >= 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  for (const auto& [seq, path] : found) {
    history_.push_back(path);
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

void CheckpointStore::WriteManifest() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"" << kManifestSchema << "\",\n"
      << "  \"next_seq\": " << next_seq_ << ",\n  \"history\": [";
  for (size_t i = 0; i < history_.size(); ++i) {
    // Store basenames for in-dir checkpoints so the directory relocates
    // cleanly; external (adopted) paths stay absolute.
    const std::string& path = history_[i];
    std::string entry = path;
    const std::string dir_prefix = config_.dir + "/";
    if (path.rfind(dir_prefix, 0) == 0) entry = path.substr(dir_prefix.size());
    out << (i ? ", " : "") << "\"" << JsonEscape(entry) << "\"";
  }
  out << "]\n}\n";
  const std::string path = ManifestPath();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::trunc);
    if (!file) return;
    file << out.str();
    if (!file.good()) {
      std::remove(tmp.c_str());
      return;
    }
  }
  // rename(2) is atomic within a filesystem: readers observe either the old
  // manifest or the new one, never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) std::remove(tmp.c_str());
}

Result<std::string> CheckpointStore::Publish(const nn::Module& module) {
  std::optional<PublishLock> lock;
  if (config_.use_lockfile) {
    auto acquired = PublishLock::Acquire(config_.dir);
    if (!acquired.ok()) return acquired.status();
    lock.emplace(std::move(acquired).value());
  }
  const std::string path = PathForSeq(next_seq_);
  Status saved = module.Save(path);
  if (saved.ok()) saved = nn::Module::VerifyCheckpoint(path);
  if (!saved.ok()) {
    StoreMetrics::Get().publish_failures.Increment();
    std::remove(path.c_str());
    return saved;
  }
  ++next_seq_;
  history_.push_back(path);
  StoreMetrics::Get().published.Increment();
  while (static_cast<int>(history_.size()) > config_.keep_last) {
    std::remove(history_.front().c_str());
    history_.erase(history_.begin());
  }
  WriteManifest();
  return path;
}

Result<CheckpointStore::LoadReport> CheckpointStore::LoadLatestGood(
    nn::Module* module) const {
  GAIA_CHECK(module != nullptr);
  if (history_.empty()) {
    return Status::NotFound("checkpoint store is empty: " + config_.dir);
  }
  LoadReport report;
  Status last = Status::OK();
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    last = util::RetryCall(config_.retry, [&] { return module->Load(*it); });
    if (last.ok()) {
      report.path = *it;
      return report;
    }
    ++report.rollbacks;
    StoreMetrics::Get().rollbacks.Increment();
  }
  return last;
}

Status CheckpointStore::Adopt(const std::string& path) {
  GAIA_RETURN_NOT_OK(nn::Module::VerifyCheckpoint(path));
  history_.push_back(path);
  WriteManifest();
  return Status::OK();
}

}  // namespace gaia::serving
