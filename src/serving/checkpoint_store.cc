#include "serving/checkpoint_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "obs/obs.h"
#include "util/check.h"

namespace gaia::serving {

namespace fs = std::filesystem;

namespace {

constexpr char kPrefix[] = "ckpt-";
constexpr char kSuffix[] = ".bin";

struct StoreMetrics {
  obs::Counter& published = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoints_published_total",
      "Checkpoints published and verified into the store");
  obs::Counter& publish_failures = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_publish_failures_total",
      "Publishes rejected (write fault or failed verification)");
  obs::Counter& rollbacks = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_checkpoint_rollbacks_total",
      "Bad checkpoints skipped while rolling back to the last good one");
  static StoreMetrics& Get() {
    static StoreMetrics* metrics = new StoreMetrics();
    return *metrics;
  }
};

/// Parses the sequence number out of "ckpt-000042.bin"; -1 when not ours.
int64_t SeqFromFilename(const std::string& filename) {
  const size_t prefix_len = sizeof(kPrefix) - 1;
  const size_t suffix_len = sizeof(kSuffix) - 1;
  if (filename.size() <= prefix_len + suffix_len) return -1;
  if (filename.rfind(kPrefix, 0) != 0) return -1;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) !=
      0) {
    return -1;
  }
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return -1;
  }
  return std::stoll(digits);
}

}  // namespace

CheckpointStore::CheckpointStore(const CheckpointStoreConfig& config)
    : config_(config) {
  GAIA_CHECK(!config_.dir.empty());
  GAIA_CHECK(config_.keep_last >= 1);
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  // Adopt surviving checkpoints from a previous run, in sequence order.
  std::vector<std::pair<int64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(config_.dir, ec)) {
    const int64_t seq = SeqFromFilename(entry.path().filename().string());
    if (seq >= 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  for (const auto& [seq, path] : found) {
    history_.push_back(path);
    next_seq_ = std::max(next_seq_, seq + 1);
  }
}

std::string CheckpointStore::PathForSeq(int64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%s%06lld%s", kPrefix,
                static_cast<long long>(seq), kSuffix);
  return config_.dir + "/" + name;
}

Result<std::string> CheckpointStore::Publish(const nn::Module& module) {
  const std::string path = PathForSeq(next_seq_);
  Status saved = module.Save(path);
  if (saved.ok()) saved = nn::Module::VerifyCheckpoint(path);
  if (!saved.ok()) {
    StoreMetrics::Get().publish_failures.Increment();
    std::remove(path.c_str());
    return saved;
  }
  ++next_seq_;
  history_.push_back(path);
  StoreMetrics::Get().published.Increment();
  while (static_cast<int>(history_.size()) > config_.keep_last) {
    std::remove(history_.front().c_str());
    history_.erase(history_.begin());
  }
  return path;
}

Result<CheckpointStore::LoadReport> CheckpointStore::LoadLatestGood(
    nn::Module* module) const {
  GAIA_CHECK(module != nullptr);
  if (history_.empty()) {
    return Status::NotFound("checkpoint store is empty: " + config_.dir);
  }
  LoadReport report;
  Status last = Status::OK();
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    last = util::RetryCall(config_.retry, [&] { return module->Load(*it); });
    if (last.ok()) {
      report.path = *it;
      return report;
    }
    ++report.rollbacks;
    StoreMetrics::Get().rollbacks.Increment();
  }
  return last;
}

Status CheckpointStore::Adopt(const std::string& path) {
  GAIA_RETURN_NOT_OK(nn::Module::VerifyCheckpoint(path));
  history_.push_back(path);
  return Status::OK();
}

}  // namespace gaia::serving
