#ifndef GAIA_SERVING_MODEL_SERVER_H_
#define GAIA_SERVING_MODEL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/gaia_model.h"
#include "core/probabilistic_gaia.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "obs/event_log.h"
#include "util/retry.h"
#include "util/status.h"

namespace gaia::serving {

class CheckpointStore;

/// \brief Online-serving configuration (§VI): how much of the e-seller graph
/// is pulled into a request's ego-subgraph, plus the request fault policy.
struct ServerConfig {
  int64_t ego_hops = 2;     ///< matches the stacked ITA-GCN depth
  int64_t max_fanout = 10;  ///< per-hop neighbour cap for latency control
  /// Base seed for per-request ego sampling. Each request derives its own
  /// RNG stream from (seed, shop), so a given shop's ego subgraph — and
  /// therefore its forecast — is a pure function of the config, independent
  /// of request order, batching, shard assignment and thread count.
  uint64_t seed = 5;
  /// Thread-count knob. 0 leaves the process-wide pool alone; > 0 resizes
  /// the *global* pool (util::ThreadPool::SetGlobalThreads) at server
  /// construction — it is NOT a private per-server pool, so it also affects
  /// training and any other server in the process. PredictBatch's fan-out is
  /// one outer ParallelFor over the requests: with an N-thread pool up to N
  /// requests run concurrently, each forward running inline on its claimed
  /// thread (nested loops never re-dispatch); with a 1-thread pool the whole
  /// sweep runs inline on the calling thread and no worker threads are
  /// involved (pinned by ShardedServingTest.PredictBatchFanout*). Forecast
  /// values are bitwise identical at any setting.
  int num_threads = 0;
  /// Per-request latency budget in milliseconds; a forward that overruns it
  /// is answered by the fallback forecaster instead. 0 disables the check
  /// (the default keeps no-fault runs bitwise identical to older builds).
  double deadline_ms = 0.0;
  /// With a deadline set, arm a util::CancelToken before the forward so an
  /// overrun aborts *mid-flight* at the next chunk boundary instead of
  /// burning the full compute. False reverts to the legacy
  /// check-after-forward behaviour (kept measurable: the
  /// serve_deadline_abort bench compares the two).
  bool cooperative_cancel = true;
  /// When the model path fails (ego extraction fault, non-finite output,
  /// deadline), serve a per-shop Holt-Winters forecast fit on that shop's
  /// own history instead of failing. False degrades to a zero forecast.
  bool fallback_enabled = true;
  /// Retry policy for LoadCheckpoint (transient I/O only; corrupt
  /// checkpoints are not retried).
  util::RetryPolicy checkpoint_retry;
};

/// \brief Real-time prediction service over a trained Gaia model.
///
/// Mirrors the paper's deployment: for a requested (possibly newcoming)
/// e-seller, the server extracts its ego-subgraph from the graph store, runs
/// the model on that subgraph only, and returns the denormalized GMV
/// forecast. Request latency and subgraph size are reported per call so the
/// deployment bench can verify linear scaling with client count.
///
/// Degradation ladder (docs/ROBUSTNESS.md): model forward -> per-shop
/// Holt-Winters fallback -> zero forecast. Predict never fails; the serve
/// path taken is tagged on the Prediction.
///
/// Thread-safety: Serve is const and safe from any number of threads.
/// Predict/PredictBatch additionally accumulate the per-server totals
/// below without synchronization, so those two entry points expect one
/// caller at a time (the sharded tier routes everything through Serve and
/// keeps its own atomic totals).
class ModelServer {
 public:
  /// Which rung of the degradation ladder answered the request.
  enum class ServePath { kModel = 0, kFallback = 1 };

  struct Prediction {
    int32_t shop = 0;
    std::vector<double> gmv;  ///< T' monthly forecasts, GMV units
    double latency_ms = 0.0;
    int64_t ego_nodes = 0;
    ServePath served_by = ServePath::kModel;
    /// Why the model path was abandoned (empty when served_by == kModel).
    std::string degraded_reason;
    /// Correlation id stamped by Serve (splitmix64-derived, process-unique).
    /// Matches the request's obs::EventLog record, so an operator can join a
    /// degraded answer to its /requestz entry. Never feeds the numeric path.
    uint64_t request_id = 0;
    /// Calibrated quantile bands in GMV units, one value per forecast month
    /// (empty unless EnableQuantileBands installed a table). p50 mirrors
    /// gmv; p10/p90 bound the central `coverage` mass. Degraded/fallback
    /// answers carry wider bands (the table's degraded_inflation), so an
    /// operator can read honest uncertainty off any rung of the ladder.
    std::vector<double> p10;
    std::vector<double> p50;
    std::vector<double> p90;
  };

  ModelServer(std::shared_ptr<core::GaiaModel> model,
              std::shared_ptr<const data::ForecastDataset> dataset,
              const ServerConfig& config);

  /// Serves one request. Never fails: faults on the model path degrade to
  /// the fallback forecaster. Fault sites: "serving.forward",
  /// "serving.cancel_delay".
  Prediction Predict(int32_t shop);

  /// Same, with a per-request latency budget overriding
  /// ServerConfig::deadline_ms for this call only (0 disables the deadline
  /// for this request). With cooperative_cancel the budget is armed as a
  /// CancelToken before the forward; an overrun aborts mid-flight and the
  /// request degrades with degraded_reason starting "deadline_exceeded".
  Prediction Predict(int32_t shop, double deadline_ms);

  /// The stateless request pipeline behind Predict/PredictBatch and the
  /// sharded tier's shard workers: per-request ego extraction (RNG derived
  /// from (config.seed, shop)) followed by the guarded forward. Const and
  /// thread-safe — any number of threads may call it concurrently — and it
  /// does not touch the per-server request totals, so callers that need
  /// them keep their own. Results are bitwise identical to Predict's.
  /// Generates a fresh request id and delegates to the context overload.
  Prediction Serve(int32_t shop, double deadline_ms) const;

  /// Same pipeline with caller-provided request correlation: the context's
  /// request id is stamped on the Prediction and, together with queue wait
  /// and shard routing, into obs::EventLog::Global() (one lock-free append,
  /// skipped entirely when the log is disabled). The sharded tier threads
  /// its queue items through here so /requestz can answer "why did request
  /// X degrade?". Forecast bytes are identical to the two-arg overload.
  Prediction Serve(int32_t shop, double deadline_ms,
                   const obs::RequestContext& ctx) const;

  /// Serves a batch of requests (the deployed system predicts millions of
  /// e-sellers in a monthly sweep); Serve calls fan out across the global
  /// pool, one request per claimed thread (see num_threads above).
  std::vector<Prediction> PredictBatch(const std::vector<int32_t>& shops);

  /// Hot-swaps model weights from an offline-produced checkpoint, retrying
  /// transient I/O per config. Verify-then-swap: on any failure the serving
  /// weights are untouched and the server keeps answering with them.
  Status LoadCheckpoint(const std::string& path);

  /// Hot-swaps from a checkpoint store, rolling back through its history to
  /// the newest checkpoint that verifies (see CheckpointStore).
  Status LoadCheckpoint(const CheckpointStore& store);

  /// Installs a calibrated band table (core::CalibrateQuantileBands): every
  /// later answer carries p10/p50/p90 in GMV units. Call before serving
  /// starts — Serve reads the table without synchronization. The point
  /// forecast (gmv) is untouched, so forecasts stay bitwise identical with
  /// bands on or off.
  void EnableQuantileBands(core::QuantileBandTable table);
  bool quantile_bands_enabled() const { return bands_ != nullptr; }

  int64_t total_requests() const { return total_requests_; }
  double total_latency_ms() const { return total_latency_ms_; }
  /// Requests answered by the fallback forecaster since construction.
  int64_t fallback_requests() const { return fallback_requests_; }
  /// Checkpoints skipped as bad during the most recent store load.
  int last_load_rollbacks() const { return last_load_rollbacks_; }

 private:
  /// The per-request pipeline behind both Predict and PredictBatch: forward
  /// with NaN/deadline guards (cooperative token when configured), degrading
  /// to FallbackForecast. Thread-safe.
  Prediction PredictOne(int32_t shop, const graph::EgoSubgraph& ego,
                        double deadline_ms) const;

  /// The degradation rung below the model: additive Holt-Winters fit on the
  /// shop's own normalized history, denormalized and clamped to >= 0.
  std::vector<double> FallbackForecast(int32_t shop) const;

  /// Attaches p10/p50/p90 from the installed band table (no-op without
  /// one). Width = scale * sigma[shop][h], denormalized, inflated for
  /// fallback answers; p10 is floored at zero like every GMV value.
  void ApplyQuantileBands(Prediction* prediction) const;

  std::shared_ptr<core::GaiaModel> model_;
  std::shared_ptr<const data::ForecastDataset> dataset_;
  ServerConfig config_;
  /// Calibrated uncertainty table; null until EnableQuantileBands.
  std::shared_ptr<const core::QuantileBandTable> bands_;
  int64_t total_requests_ = 0;
  double total_latency_ms_ = 0.0;
  int64_t fallback_requests_ = 0;
  int last_load_rollbacks_ = 0;
  /// Running mean of successful model-forward latency (microseconds),
  /// feeding the gaia_cancel_latency_saved_seconds estimate. Atomic because
  /// PredictBatch runs PredictOne concurrently.
  mutable std::atomic<int64_t> model_forward_count_{0};
  mutable std::atomic<int64_t> model_forward_us_total_{0};
};

/// \brief Offline side of the hybrid architecture (§VI, Fig. 5): the
/// monthly-scheduled pipeline that assembles features and relations (here:
/// the already-built ForecastDataset), trains Gaia, and publishes a
/// checkpoint for the model server.
class OfflineTrainingPipeline {
 public:
  struct Config {
    core::GaiaConfig model;
    core::TrainConfig train;
    std::string checkpoint_path;  ///< where the trained weights are published
  };

  explicit OfflineTrainingPipeline(const Config& config) : config_(config) {}

  struct RunReport {
    core::TrainResult train;
    std::string checkpoint_path;
  };

  /// One scheduled run: train and publish. Returns the trained model (the
  /// server can also LoadCheckpoint from the published path).
  Result<std::shared_ptr<core::GaiaModel>> Run(
      const data::ForecastDataset& dataset, RunReport* report = nullptr) const;

 private:
  Config config_;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_MODEL_SERVER_H_
