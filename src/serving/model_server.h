#ifndef GAIA_SERVING_MODEL_SERVER_H_
#define GAIA_SERVING_MODEL_SERVER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "util/status.h"

namespace gaia::serving {

/// \brief Online-serving configuration (§VI): how much of the e-seller graph
/// is pulled into a request's ego-subgraph.
struct ServerConfig {
  int64_t ego_hops = 2;     ///< matches the stacked ITA-GCN depth
  int64_t max_fanout = 10;  ///< per-hop neighbour cap for latency control
  uint64_t seed = 5;
  /// Worker threads for the batch sweep (PredictBatch fans requests across
  /// the pool). 0 keeps the current process-wide pool (GAIA_NUM_THREADS or
  /// hardware concurrency); > 0 pins the global pool to that size at server
  /// construction. Forecast values are bitwise identical at any setting.
  int num_threads = 0;
};

/// \brief Real-time prediction service over a trained Gaia model.
///
/// Mirrors the paper's deployment: for a requested (possibly newcoming)
/// e-seller, the server extracts its ego-subgraph from the graph store, runs
/// the model on that subgraph only, and returns the denormalized GMV
/// forecast. Request latency and subgraph size are reported per call so the
/// deployment bench can verify linear scaling with client count.
class ModelServer {
 public:
  struct Prediction {
    int32_t shop = 0;
    std::vector<double> gmv;  ///< T' monthly forecasts, GMV units
    double latency_ms = 0.0;
    int64_t ego_nodes = 0;
  };

  ModelServer(std::shared_ptr<core::GaiaModel> model,
              std::shared_ptr<const data::ForecastDataset> dataset,
              const ServerConfig& config);

  /// Serves one request.
  Prediction Predict(int32_t shop);

  /// Serves a batch of requests sequentially (the deployed system predicts
  /// millions of e-sellers in a monthly sweep).
  std::vector<Prediction> PredictBatch(const std::vector<int32_t>& shops);

  /// Hot-swaps model weights from an offline-produced checkpoint.
  Status LoadCheckpoint(const std::string& path);

  int64_t total_requests() const { return total_requests_; }
  double total_latency_ms() const { return total_latency_ms_; }

 private:
  std::shared_ptr<core::GaiaModel> model_;
  std::shared_ptr<const data::ForecastDataset> dataset_;
  ServerConfig config_;
  Rng rng_;
  int64_t total_requests_ = 0;
  double total_latency_ms_ = 0.0;
};

/// \brief Offline side of the hybrid architecture (§VI, Fig. 5): the
/// monthly-scheduled pipeline that assembles features and relations (here:
/// the already-built ForecastDataset), trains Gaia, and publishes a
/// checkpoint for the model server.
class OfflineTrainingPipeline {
 public:
  struct Config {
    core::GaiaConfig model;
    core::TrainConfig train;
    std::string checkpoint_path;  ///< where the trained weights are published
  };

  explicit OfflineTrainingPipeline(const Config& config) : config_(config) {}

  struct RunReport {
    core::TrainResult train;
    std::string checkpoint_path;
  };

  /// One scheduled run: train and publish. Returns the trained model (the
  /// server can also LoadCheckpoint from the published path).
  Result<std::shared_ptr<core::GaiaModel>> Run(
      const data::ForecastDataset& dataset, RunReport* report = nullptr) const;

 private:
  Config config_;
};

}  // namespace gaia::serving

#endif  // GAIA_SERVING_MODEL_SERVER_H_
