#include "serving/sharded_server.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/obs.h"
#include "serving/checkpoint_store.h"
#include "util/check.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace gaia::serving {

namespace {

/// Budget handed to the forward when the whole deadline was consumed while
/// the request sat in its shard queue: small enough that the cooperative
/// token fires immediately and the request degrades to the fallback.
constexpr double kExpiredBudgetMs = 1e-3;

/// Tier-wide metrics. queue_wait/batch_size/windows/requests are hot-path
/// and gated on obs::Enabled(); the cancel and swap counters are
/// operational events counted unconditionally (gaia_robust_* discipline).
struct TierMetrics {
  obs::Histogram& queue_wait = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_queue_wait_seconds", {},
      "Time a request spent in its shard queue before its window opened");
  obs::Histogram& batch_size = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_serve_batch_size", obs::Histogram::ExponentialBuckets(1.0, 2.0, 8),
      "Requests coalesced per micro-batch window");
  obs::Counter& windows = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_windows_total", "Micro-batch windows served (all shards)");
  obs::Counter& requests = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_sharded_requests_total",
      "Requests answered by the sharded tier (all paths, all shards)");
  obs::Counter& cancelled_in_queue = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_cancelled_in_queue_total",
      "Requests cancelled while waiting in a shard queue, dropped before "
      "the forward");
  obs::Counter& swaps = obs::MetricsRegistry::Global().GetCounter(
      "gaia_serve_checkpoint_swaps_total",
      "Generation flips published by LoadCheckpoint (RCU swap)");
  static TierMetrics& Get() {
    static TierMetrics* metrics = new TierMetrics();
    return *metrics;
  }
};

}  // namespace

ShardedServer::ShardedServer(
    std::shared_ptr<core::GaiaModel> model,
    std::shared_ptr<const data::ForecastDataset> dataset,
    const ShardedServerConfig& config)
    : config_(config), dataset_(std::move(dataset)) {
  GAIA_CHECK(model != nullptr);
  GAIA_CHECK(dataset_ != nullptr);
  GAIA_CHECK_GE(config_.num_shards, 1);
  config_.max_batch = std::max(1, config_.max_batch);
  // The tier owns its threading: honour the knob once here, then force the
  // per-generation servers to leave the pool alone so an RCU publish can
  // never resize it mid-serve.
  if (config_.server.num_threads > 0) {
    util::ThreadPool::SetGlobalThreads(config_.server.num_threads);
  }
  config_.server.num_threads = 0;
  partitioner_ = graph::MakePartitioner(config_.partition, config_.num_shards);

  std::shared_ptr<const Generation> initial =
      MakeGeneration(std::move(model), 0);
  shards_.reserve(static_cast<size_t>(config_.num_shards));
  for (int k = 0; k < config_.num_shards; ++k) {
    auto shard = std::make_unique<Shard>();
    shard->queue =
        std::make_unique<util::MpmcQueue<std::unique_ptr<PendingRequest>>>(
            config_.queue_capacity);
    shard->cell.Store(initial);
    const std::string stem = "gaia_serve_shard_" + std::to_string(k);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    shard->requests_total = &registry.GetCounter(
        stem + "_requests_total", "Requests answered by this shard");
    shard->windows_total = &registry.GetCounter(
        stem + "_windows_total", "Micro-batch windows served by this shard");
    shard->queue_depth = &registry.GetGauge(
        stem + "_queue_depth", "Shard queue depth when its window opened");
    shards_.push_back(std::move(shard));
  }
  // Workers start only after every shard is fully built: a worker for shard
  // 0 must be able to see shards_[k] for logging/metrics without racing
  // construction.
  for (int k = 0; k < config_.num_shards; ++k) {
    shards_[static_cast<size_t>(k)]->worker =
        std::thread([this, k] { WorkerLoop(k); });
  }
}

ShardedServer::~ShardedServer() { Stop(); }

void ShardedServer::Stop() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& shard : shards_) shard->queue->Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::shared_ptr<const ShardedServer::Generation> ShardedServer::MakeGeneration(
    std::shared_ptr<core::GaiaModel> model, int64_t epoch) const {
  auto generation = std::make_shared<Generation>();
  generation->model = std::move(model);
  auto server = std::make_unique<ModelServer>(generation->model, dataset_,
                                              config_.server);
  if (bands_ != nullptr) server->EnableQuantileBands(*bands_);
  generation->server = std::move(server);
  generation->epoch = epoch;
  return generation;
}

void ShardedServer::EnableQuantileBands(core::QuantileBandTable table) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  bands_ = std::make_shared<const core::QuantileBandTable>(std::move(table));
  // Rebuild the live generation around the same model/epoch so bands take
  // effect without waiting for the next checkpoint publish.
  std::shared_ptr<const Generation> current = shards_.front()->cell.Load();
  FlipGenerations(MakeGeneration(current->model, current->epoch));
}

void ShardedServer::FlipGenerations(std::shared_ptr<const Generation> next) {
  for (auto& shard : shards_) shard->cell.Store(next);
  epoch_.store(next->epoch, std::memory_order_release);
  TierMetrics::Get().swaps.Increment();
}

Result<std::shared_ptr<core::GaiaModel>> ShardedServer::NewEmptyModel() const {
  // The live generation's architecture defines the shape a checkpoint must
  // match; the new model is invisible to readers until the flip.
  std::shared_ptr<const Generation> current = shards_.front()->cell.Load();
  auto created = core::GaiaModel::Create(
      current->model->config(), dataset_->history_len(), dataset_->horizon(),
      dataset_->temporal_dim(), dataset_->static_dim());
  if (!created.ok()) return created.status();
  return std::shared_ptr<core::GaiaModel>(std::move(created).value());
}

Status ShardedServer::LoadCheckpoint(const std::string& path) {
  GAIA_OBS_SPAN("sharded.load_checkpoint");
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto fresh = NewEmptyModel();
  if (!fresh.ok()) return fresh.status();
  const Status loaded =
      util::RetryCall(config_.server.checkpoint_retry,
                      [&] { return fresh.value()->Load(path); });
  if (!loaded.ok()) return loaded;  // nothing flipped; old generation serves
  FlipGenerations(MakeGeneration(std::move(fresh).value(),
                                 epoch_.load(std::memory_order_acquire) + 1));
  return Status::OK();
}

Status ShardedServer::LoadCheckpoint(const CheckpointStore& store) {
  GAIA_OBS_SPAN("sharded.load_checkpoint");
  std::lock_guard<std::mutex> lock(publish_mu_);
  auto fresh = NewEmptyModel();
  if (!fresh.ok()) return fresh.status();
  auto report = store.LoadLatestGood(fresh.value().get());
  if (!report.ok()) return report.status();
  last_load_rollbacks_ = report.value().rollbacks;
  FlipGenerations(MakeGeneration(std::move(fresh).value(),
                                 epoch_.load(std::memory_order_acquire) + 1));
  return Status::OK();
}

ShardedServer::Prediction ShardedServer::Predict(int32_t shop) {
  return Predict(shop, config_.server.deadline_ms, nullptr);
}

ShardedServer::Prediction ShardedServer::Predict(
    int32_t shop, double deadline_ms, const util::CancelToken* cancel) {
  GAIA_OBS_SPAN("sharded.predict");
  return Submit(shop, deadline_ms, cancel).get();
}

std::vector<ShardedServer::Prediction> ShardedServer::PredictBatch(
    const std::vector<int32_t>& shops) {
  GAIA_OBS_SPAN("sharded.predict_batch");
  std::vector<std::future<Prediction>> futures;
  futures.reserve(shops.size());
  for (int32_t shop : shops) {
    futures.push_back(Submit(shop, config_.server.deadline_ms, nullptr));
  }
  std::vector<Prediction> out;
  out.reserve(shops.size());
  for (auto& future : futures) out.push_back(future.get());
  return out;
}

std::future<ShardedServer::Prediction> ShardedServer::Submit(
    int32_t shop, double deadline_ms, const util::CancelToken* cancel) {
  auto request = std::make_unique<PendingRequest>();
  request->shop = shop;
  request->deadline_ms = deadline_ms;
  request->cancel = cancel;
  request->request_id = obs::NextRequestId();
  request->enqueued_at = std::chrono::steady_clock::now();
  std::future<Prediction> future = request->promise.get_future();
  const int shard_index = partitioner_->ShardOf(shop);
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  if (stopped_.load(std::memory_order_acquire) ||
      !shard.queue->Push(std::move(request))) {
    // Queues closed: Push left `request` with us, so answer it inline on
    // the caller against the current generation — accepted requests are
    // never dropped, even during shutdown.
    std::shared_ptr<const Generation> generation = shard.cell.Load();
    Prediction prediction = ServeOne(*generation, *request, shard_index);
    RecordAnswer(shard_index, prediction);
    request->promise.set_value(std::move(prediction));
  }
  return future;
}

void ShardedServer::WorkerLoop(int shard_index) {
  // Nested ParallelFor calls inside the forward run inline on this thread:
  // the K shard workers ARE the parallelism, and the inline path is the
  // exact serial path, which is what keeps sharded output bitwise equal to
  // the unsharded server.
  util::ThreadPool::InlineScope inline_scope;
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  std::vector<std::unique_ptr<PendingRequest>> window;
  while (true) {
    std::optional<std::unique_ptr<PendingRequest>> first =
        shard.queue->Pop();
    if (!first.has_value()) break;  // closed and drained
    window.clear();
    window.push_back(std::move(*first));
    if (config_.max_batch > 1 && config_.max_wait_us > 0.0) {
      const auto flush_at =
          std::chrono::steady_clock::now() +
          std::chrono::nanoseconds(
              static_cast<int64_t>(config_.max_wait_us * 1e3));
      while (static_cast<int>(window.size()) < config_.max_batch) {
        std::optional<std::unique_ptr<PendingRequest>> next =
            shard.queue->PopUntil(flush_at);
        // nullopt = window expired (or queue closed and drained): flush.
        if (!next.has_value()) break;
        window.push_back(std::move(*next));
      }
    }
    ServeWindow(shard_index, window);
  }
}

void ShardedServer::ServeWindow(
    int shard_index, std::vector<std::unique_ptr<PendingRequest>>& window) {
  GAIA_OBS_SPAN("sharded.window");
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  // One generation snapshot per window: every request in the window is
  // answered by the same weights even if a flip lands mid-window.
  std::shared_ptr<const Generation> generation = shard.cell.Load();
  if (obs::Enabled()) {
    TierMetrics& metrics = TierMetrics::Get();
    metrics.windows.Increment();
    metrics.batch_size.Observe(static_cast<double>(window.size()));
    shard.windows_total->Increment();
    shard.queue_depth->Set(static_cast<double>(shard.queue->size()));
  }
  for (auto& request : window) {
    Prediction prediction = ServeOne(*generation, *request, shard_index);
    RecordAnswer(shard_index, prediction);
    request->promise.set_value(std::move(prediction));
  }
}

ShardedServer::Prediction ShardedServer::ServeOne(const Generation& gen,
                                                  PendingRequest& request,
                                                  int shard_index) {
  const auto now = std::chrono::steady_clock::now();
  const double waited_ms =
      std::chrono::duration<double, std::milli>(now - request.enqueued_at)
          .count();
  if (obs::Enabled()) {
    TierMetrics::Get().queue_wait.Observe(waited_ms * 1e-3);
  }
  if (request.cancel != nullptr && request.cancel->Cancelled()) {
    // The caller gave up while the request was queued: drop it before the
    // forward. The rest of the window never notices.
    util::NoteCancelObserved();
    TierMetrics::Get().cancelled_in_queue.Increment();
    Prediction prediction;
    prediction.shop = request.shop;
    prediction.gmv.assign(static_cast<size_t>(dataset_->horizon()), 0.0);
    prediction.served_by = ModelServer::ServePath::kFallback;
    prediction.degraded_reason = "cancelled while queued";
    prediction.request_id = request.request_id;
    // This request never reaches Serve, so the flight recorder is written
    // here: /requestz must cover dropped requests, not just answered ones.
    obs::EventLog& log = obs::EventLog::Global();
    if (log.enabled()) {
      obs::EventRecord record;
      record.request_id = request.request_id;
      record.shop = request.shop;
      record.shard = shard_index;
      record.served_by = 1;
      record.cancelled = 1;
      record.queue_wait_ms = waited_ms;
      std::strncpy(record.reason, prediction.degraded_reason.c_str(),
                   sizeof(record.reason) - 1);
      log.Append(record);
    }
    return prediction;
  }
  double budget_ms = request.deadline_ms;
  bool consumed_in_queue = false;
  if (budget_ms > 0.0) {
    // The deadline covers queue wait + forward.
    budget_ms -= waited_ms;
    if (budget_ms <= 0.0) {
      budget_ms = kExpiredBudgetMs;
      consumed_in_queue = true;
    }
  }
  // Install the request token as the ambient parent so Serve's own deadline
  // child observes it: a cancel fired mid-forward aborts at the next chunk.
  util::CancelScope scope(request.cancel);
  obs::RequestContext ctx;
  ctx.request_id = request.request_id;
  ctx.queue_wait_ms = waited_ms;
  ctx.shard = shard_index;
  Prediction prediction = gen.server->Serve(request.shop, budget_ms, ctx);
  if (consumed_in_queue &&
      prediction.served_by == ModelServer::ServePath::kFallback) {
    prediction.degraded_reason =
        "deadline_exceeded (budget " + std::to_string(request.deadline_ms) +
        " ms consumed while queued)";
  }
  return prediction;
}

void ShardedServer::RecordAnswer(int shard_index,
                                 const Prediction& prediction) {
  total_requests_.fetch_add(1, std::memory_order_relaxed);
  if (prediction.served_by == ModelServer::ServePath::kFallback) {
    fallback_requests_.fetch_add(1, std::memory_order_relaxed);
  }
  Shard& shard = *shards_[static_cast<size_t>(shard_index)];
  shard.requests.fetch_add(1, std::memory_order_relaxed);
  if (obs::Enabled()) {
    shard.requests_total->Increment();
    TierMetrics::Get().requests.Increment();
  }
}

}  // namespace gaia::serving
