#include "serving/monthly_scheduler.h"

#include <optional>
#include <utility>

#include "data/dataset.h"
#include "obs/obs.h"
#include "util/cancel.h"
#include "util/stopwatch.h"

namespace gaia::serving {

namespace {

struct SchedulerMetrics {
  obs::Counter& cycle_failures = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_cycle_failures_total",
      "Monthly cycles that hit at least one failure (still served if possible)");
  obs::Counter& cycles_skipped = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_cycles_skipped_total",
      "Monthly cycles that could not serve at all and were skipped");
  obs::Histogram& cycle_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_cycle_seconds", {},
      "Wall time of one retrain+publish+serve cycle");
  obs::Histogram& train_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_train_seconds", {},
      "Offline retrain wall time per cycle");
  obs::Histogram& serve_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_serve_seconds", {},
      "Online serve sweep wall time per cycle");
  // Drift gauges are operational signals like the gaia_robust_* counters:
  // set unconditionally (once per cycle, not hot-path) so an operator sees
  // drift with GAIA_OBS off. Groundwork for drift-triggered retraining.
  obs::Gauge& drift_score = obs::MetricsRegistry::Global().GetGauge(
      "gaia_drift_score",
      "Relative excess of the latest served cycle's online MAE over the "
      "trailing-window mean ((mae - baseline) / baseline; positive = worse)");
  obs::Gauge& drift_window = obs::MetricsRegistry::Global().GetGauge(
      "gaia_drift_window_cycles",
      "Served cycles in the drift baseline window");
  static SchedulerMetrics& Get() {
    static SchedulerMetrics* metrics = new SchedulerMetrics();
    return *metrics;
  }
};

}  // namespace

Result<std::vector<MonthlyScheduler::CycleReport>> MonthlyScheduler::Run()
    const {
  std::vector<CycleReport> reports;
  reports.reserve(static_cast<size_t>(config_.num_cycles));
  // Rollback substrate: in checkpoint_dir mode every good publish lands
  // here, and a broken cycle serves the newest surviving checkpoint.
  std::optional<CheckpointStore> store;
  if (!config_.checkpoint_dir.empty()) {
    CheckpointStoreConfig store_cfg;
    store_cfg.dir = config_.checkpoint_dir;
    store_cfg.keep_last = config_.checkpoint_keep;
    store_cfg.retry = config_.server.checkpoint_retry;
    store.emplace(store_cfg);
  }

  // Trailing MAEs of served cycles, newest last; the drift baseline for a
  // cycle is the mean over this window *before* the cycle is pushed.
  std::vector<double> drift_window_maes;

  for (int cycle = 0; cycle < config_.num_cycles; ++cycle) {
    GAIA_OBS_SPAN("scheduler.cycle");
    Stopwatch cycle_watch;
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("gaia_scheduler_cycles_total",
                      "Monthly retrain+serve cycles completed")
          .Increment();
    }
    CycleReport report;
    report.cycle = cycle;
    auto fail_step = [&report](Status status) {
      if (report.healthy) report.error = std::move(status);
      report.healthy = false;
    };

    // The month advances: calendar shifts and the population is redrawn.
    data::MarketConfig market_cfg = config_.market;
    market_cfg.start_calendar_month =
        (config_.market.start_calendar_month + cycle) % 12;
    market_cfg.seed = config_.market.seed + static_cast<uint64_t>(cycle);
    report.calendar_start_month = market_cfg.start_calendar_month;

    std::shared_ptr<data::ForecastDataset> dataset;
    auto market = data::MarketSimulator(market_cfg).Generate();
    if (!market.ok()) {
      fail_step(market.status());
    } else {
      auto dataset_result = data::ForecastDataset::Create(
          market.value(), data::DatasetOptions{});
      if (!dataset_result.ok()) {
        fail_step(dataset_result.status());
      } else {
        dataset = std::make_shared<data::ForecastDataset>(
            std::move(dataset_result).value());
      }
    }
    if (dataset == nullptr) {
      // Without this month's snapshot there is nothing to serve against:
      // skip the cycle but keep the schedule (and the store) alive.
      SchedulerMetrics::Get().cycle_failures.Increment();
      SchedulerMetrics::Get().cycles_skipped.Increment();
      if (obs::Enabled()) {
        SchedulerMetrics::Get().cycle_seconds.Observe(
            cycle_watch.ElapsedSeconds());
      }
      reports.push_back(std::move(report));
      continue;
    }
    report.graph_edges = dataset->graph().num_edges();

    // Offline retrain + publish. In store mode the pipeline trains in
    // memory and the store handles the (atomic, verified) publish.
    OfflineTrainingPipeline::Config offline_cfg = config_.offline;
    if (store.has_value()) offline_cfg.checkpoint_path.clear();
    OfflineTrainingPipeline pipeline(offline_cfg);
    OfflineTrainingPipeline::RunReport offline_report;
    std::shared_ptr<core::GaiaModel> model;
    // Arm the retrain budget: Trainer::Fit picks the token up as its
    // ambient parent and aborts between safe points once it fires.
    std::shared_ptr<util::CancelToken> train_token;
    if (config_.train_deadline_ms > 0.0) {
      train_token = util::CancelToken::WithDeadline(config_.train_deadline_ms);
    }
    Result<std::shared_ptr<core::GaiaModel>> trained = [&] {
      util::CancelScope train_scope(train_token.get());
      return pipeline.Run(*dataset, &offline_report);
    }();
    report.train = offline_report.train;
    if (obs::Enabled() && offline_report.train.epochs_run > 0) {
      SchedulerMetrics::Get().train_seconds.Observe(
          offline_report.train.seconds);
    }
    if (trained.ok()) {
      model = trained.value();
      report.trained = true;
      if (store.has_value()) {
        auto published = store->Publish(*model);
        if (published.ok()) {
          report.checkpoint_path = published.value();
        } else {
          // Corrupt/failed publish: the previous checkpoint stays newest in
          // the store and serving below rolls back to it.
          fail_step(published.status());
        }
      }
    } else {
      fail_step(trained.status());
      // Retrain failed: serve this month's requests with the last good
      // checkpoint instead (hot-swapped below). A fresh model shell is
      // enough because store checkpoints share the config's architecture.
      auto shell = core::GaiaModel::Create(
          config_.offline.model, dataset->history_len(), dataset->horizon(),
          dataset->temporal_dim(), dataset->static_dim());
      if (shell.ok()) {
        model = std::move(shell).value();
      }
    }

    bool can_serve = model != nullptr;
    if (can_serve) {
      ModelServer server(model, dataset, config_.server);
      if (store.has_value()) {
        Status swapped = server.LoadCheckpoint(*store);
        if (!swapped.ok()) {
          fail_step(swapped);
          // An untrained shell with no loadable checkpoint has nothing
          // sensible to serve; a trained in-memory model still does.
          can_serve = report.trained;
        } else {
          if (server.last_load_rollbacks() > 0 || !report.trained) {
            report.rolled_back = true;
            if (report.trained) {
              fail_step(Status::DataLoss(
                  "cycle " + std::to_string(cycle) +
                  " rolled back to a previous checkpoint"));
            }
          }
          if (store->history().size() > 0 && report.checkpoint_path.empty()) {
            report.checkpoint_path = store->history().back();
          }
        }
      } else if (!offline_cfg.checkpoint_path.empty() && report.trained) {
        // Legacy single-file mode: hot-swap the published file; on failure
        // the server keeps the trained in-memory weights (verify-then-swap).
        Status swapped = server.LoadCheckpoint(offline_cfg.checkpoint_path);
        if (!swapped.ok()) fail_step(swapped);
        report.checkpoint_path = offline_cfg.checkpoint_path;
      }

      if (can_serve) {
        Stopwatch serve_watch;
        std::vector<std::vector<double>> forecasts;
        const std::vector<int32_t>& clients = dataset->test_nodes();
        forecasts.reserve(clients.size());
        for (int32_t shop : clients) {
          forecasts.push_back(server.Predict(shop).gmv);
        }
        if (obs::Enabled()) {
          SchedulerMetrics::Get().serve_seconds.Observe(
              serve_watch.ElapsedSeconds());
        }
        report.served = true;
        report.fallback_requests = server.fallback_requests();
        report.online = core::Evaluator::FromPredictions(
            "Gaia (cycle " + std::to_string(cycle) + ")", *dataset, clients,
            forecasts);
        report.mean_latency_ms =
            server.total_latency_ms() /
            static_cast<double>(std::max<int64_t>(server.total_requests(), 1));
        // Online drift: this cycle's MAE vs the trailing-window mean of
        // previously served cycles. The first served cycle has no baseline
        // and scores 0 by definition.
        if (config_.drift_window_cycles > 0) {
          const double mae = report.online.overall.mae;
          if (!drift_window_maes.empty()) {
            double baseline = 0.0;
            for (double m : drift_window_maes) baseline += m;
            baseline /= static_cast<double>(drift_window_maes.size());
            report.drift_baseline_mae = baseline;
            report.drift_score =
                (mae - baseline) / std::max(baseline, 1e-12);
          }
          drift_window_maes.push_back(mae);
          if (drift_window_maes.size() >
              static_cast<size_t>(config_.drift_window_cycles)) {
            drift_window_maes.erase(drift_window_maes.begin());
          }
          SchedulerMetrics::Get().drift_score.Set(report.drift_score);
          SchedulerMetrics::Get().drift_window.Set(
              static_cast<double>(drift_window_maes.size()));
        }
      }
    }
    if (!can_serve) SchedulerMetrics::Get().cycles_skipped.Increment();
    if (!report.healthy) SchedulerMetrics::Get().cycle_failures.Increment();
    if (obs::Enabled()) {
      SchedulerMetrics::Get().cycle_seconds.Observe(
          cycle_watch.ElapsedSeconds());
    }
    reports.push_back(std::move(report));
  }

  // Only a schedule in which every single cycle failed to serve is a hard
  // error — that means the pipeline never produced a usable model.
  bool any_served = reports.empty();
  for (const CycleReport& report : reports) any_served |= report.served;
  if (!any_served) {
    for (const CycleReport& report : reports) {
      if (!report.error.ok()) return report.error;
    }
    return Status::Internal("monthly schedule served no cycle");
  }
  return reports;
}

}  // namespace gaia::serving
