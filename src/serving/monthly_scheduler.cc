#include "serving/monthly_scheduler.h"

#include <optional>
#include <thread>
#include <utility>

#include "data/dataset.h"
#include "obs/obs.h"
#include "util/cancel.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace gaia::serving {

namespace {

struct SchedulerMetrics {
  obs::Counter& cycle_failures = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_cycle_failures_total",
      "Monthly cycles that hit at least one failure (still served if possible)");
  obs::Counter& cycles_skipped = obs::MetricsRegistry::Global().GetCounter(
      "gaia_robust_cycles_skipped_total",
      "Monthly cycles that could not serve at all and were skipped");
  obs::Histogram& cycle_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_cycle_seconds", {},
      "Wall time of one retrain+publish+serve cycle");
  obs::Histogram& train_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_train_seconds", {},
      "Offline retrain wall time per cycle");
  obs::Histogram& serve_seconds = obs::MetricsRegistry::Global().GetHistogram(
      "gaia_scheduler_serve_seconds", {},
      "Online serve sweep wall time per cycle");
  // Drift gauges are operational signals like the gaia_robust_* counters:
  // set unconditionally (once per cycle, not hot-path) so an operator sees
  // drift with GAIA_OBS off. Groundwork for drift-triggered retraining.
  obs::Gauge& drift_score = obs::MetricsRegistry::Global().GetGauge(
      "gaia_drift_score",
      "Relative excess of the latest served cycle's online MAE over the "
      "trailing-window mean ((mae - baseline) / baseline; positive = worse)");
  obs::Gauge& drift_window = obs::MetricsRegistry::Global().GetGauge(
      "gaia_drift_window_cycles",
      "Served cycles in the drift baseline window");
  // Trigger counters, unconditional for the same reason as the gauges: an
  // early retrain is exactly the event an operator pages on.
  obs::Counter& drift_retrains = obs::MetricsRegistry::Global().GetCounter(
      "gaia_drift_retrains_total",
      "Early retrains fired because gaia_drift_score exceeded the trigger "
      "threshold");
  obs::Counter& drift_retrains_suppressed =
      obs::MetricsRegistry::Global().GetCounter(
          "gaia_drift_retrains_suppressed_total",
          "Drift triggers ignored because they landed inside the retrain "
          "cooldown window");
  static SchedulerMetrics& Get() {
    static SchedulerMetrics* metrics = new SchedulerMetrics();
    return *metrics;
  }
};

}  // namespace

Result<std::vector<MonthlyScheduler::CycleReport>> MonthlyScheduler::Run()
    const {
  std::vector<CycleReport> reports;
  reports.reserve(static_cast<size_t>(config_.num_cycles));
  // Rollback substrate: in checkpoint_dir mode every good publish lands
  // here, and a broken cycle serves the newest surviving checkpoint.
  std::optional<CheckpointStore> store;
  if (!config_.checkpoint_dir.empty()) {
    CheckpointStoreConfig store_cfg;
    store_cfg.dir = config_.checkpoint_dir;
    store_cfg.keep_last = config_.checkpoint_keep;
    store_cfg.retry = config_.server.checkpoint_retry;
    store.emplace(store_cfg);
  }

  // Trailing MAEs of healthy served cycles, newest last; the drift baseline
  // for a cycle is the mean over this window *before* the cycle is pushed.
  // Rolled-back cycles are scored against it but never pushed into it: a
  // cycle served from stale weights measures the rollback, not the market,
  // and folding it in would poison every later cycle's baseline.
  std::vector<double> drift_window_maes;
  // Cycle index of the last drift-triggered retrain (-1 = never); the
  // cooldown is measured against it.
  int last_drift_retrain_cycle = -1;

  for (int cycle = 0; cycle < config_.num_cycles; ++cycle) {
    GAIA_OBS_SPAN("scheduler.cycle");
    Stopwatch cycle_watch;
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("gaia_scheduler_cycles_total",
                      "Monthly retrain+serve cycles completed")
          .Increment();
    }
    CycleReport report;
    report.cycle = cycle;
    auto fail_step = [&report](Status status) {
      if (report.healthy) report.error = std::move(status);
      report.healthy = false;
    };

    // The month advances: calendar shifts and the population is redrawn.
    data::MarketConfig market_cfg = config_.market;
    market_cfg.start_calendar_month =
        (config_.market.start_calendar_month + cycle) % 12;
    market_cfg.seed = config_.market.seed + static_cast<uint64_t>(cycle);
    report.calendar_start_month = market_cfg.start_calendar_month;

    std::shared_ptr<data::ForecastDataset> dataset;
    // The regime (if any) replays against every month's redrawn population
    // from regime_from_cycle onward; an empty script makes this the exact
    // plain-simulator path.
    auto market = data::MarketSimulator(
                      market_cfg, cycle >= config_.regime_from_cycle
                                      ? config_.regime
                                      : data::RegimeScript())
                      .Generate();
    if (!market.ok()) {
      fail_step(market.status());
    } else {
      auto dataset_result = data::ForecastDataset::Create(
          market.value(), data::DatasetOptions{});
      if (!dataset_result.ok()) {
        fail_step(dataset_result.status());
      } else {
        dataset = std::make_shared<data::ForecastDataset>(
            std::move(dataset_result).value());
      }
    }
    if (dataset == nullptr) {
      // Without this month's snapshot there is nothing to serve against:
      // skip the cycle but keep the schedule (and the store) alive.
      SchedulerMetrics::Get().cycle_failures.Increment();
      SchedulerMetrics::Get().cycles_skipped.Increment();
      if (obs::Enabled()) {
        SchedulerMetrics::Get().cycle_seconds.Observe(
            cycle_watch.ElapsedSeconds());
      }
      reports.push_back(std::move(report));
      continue;
    }
    report.graph_edges = dataset->graph().num_edges();

    // Offline retrain + publish. In store mode the pipeline trains in
    // memory and the store handles the (atomic, verified) publish.
    OfflineTrainingPipeline::Config offline_cfg = config_.offline;
    if (store.has_value()) offline_cfg.checkpoint_path.clear();
    OfflineTrainingPipeline pipeline(offline_cfg);
    OfflineTrainingPipeline::RunReport offline_report;
    std::shared_ptr<core::GaiaModel> model;
    // Arm the retrain budget: Trainer::Fit picks the token up as its
    // ambient parent and aborts between safe points once it fires.
    std::shared_ptr<util::CancelToken> train_token;
    if (config_.train_deadline_ms > 0.0) {
      train_token = util::CancelToken::WithDeadline(config_.train_deadline_ms);
    }
    Result<std::shared_ptr<core::GaiaModel>> trained = [&] {
      util::CancelScope train_scope(train_token.get());
      return pipeline.Run(*dataset, &offline_report);
    }();
    report.train = offline_report.train;
    if (obs::Enabled() && offline_report.train.epochs_run > 0) {
      SchedulerMetrics::Get().train_seconds.Observe(
          offline_report.train.seconds);
    }
    bool publish_failed = false;
    if (trained.ok()) {
      model = trained.value();
      report.trained = true;
      if (store.has_value()) {
        auto published = store->Publish(*model);
        if (published.ok()) {
          report.checkpoint_path = published.value();
        } else {
          // Corrupt/failed publish: the previous checkpoint stays newest in
          // the store and serving below rolls back to it.
          publish_failed = true;
          fail_step(published.status());
        }
      }
    } else {
      fail_step(trained.status());
      // Retrain failed: serve this month's requests with the last good
      // checkpoint instead (hot-swapped below). A fresh model shell is
      // enough because store checkpoints share the config's architecture.
      auto shell = core::GaiaModel::Create(
          config_.offline.model, dataset->history_len(), dataset->horizon(),
          dataset->temporal_dim(), dataset->static_dim());
      if (shell.ok()) {
        model = std::move(shell).value();
      }
    }

    bool can_serve = model != nullptr;
    if (can_serve) {
      ModelServer server(model, dataset, config_.server);
      if (store.has_value()) {
        Status swapped = server.LoadCheckpoint(*store);
        if (!swapped.ok()) {
          fail_step(swapped);
          // An untrained shell with no loadable checkpoint has nothing
          // sensible to serve; a trained in-memory model still does.
          can_serve = report.trained;
        } else {
          // Rollback detection covers all three ways a cycle can end up on
          // older weights: the store skipped bad checkpoints during the
          // load, the retrain never produced weights, or this cycle's
          // publish failed and the previous checkpoint stayed newest.
          if (server.last_load_rollbacks() > 0 || !report.trained ||
              publish_failed) {
            report.rolled_back = true;
            if (report.trained && !publish_failed) {
              fail_step(Status::DataLoss(
                  "cycle " + std::to_string(cycle) +
                  " rolled back to a previous checkpoint"));
            }
          }
          if (store->history().size() > 0 && report.checkpoint_path.empty()) {
            report.checkpoint_path = store->history().back();
          }
        }
      } else if (!offline_cfg.checkpoint_path.empty() && report.trained) {
        // Legacy single-file mode: hot-swap the published file; on failure
        // the server keeps the trained in-memory weights (verify-then-swap).
        Status swapped = server.LoadCheckpoint(offline_cfg.checkpoint_path);
        if (!swapped.ok()) fail_step(swapped);
        report.checkpoint_path = offline_cfg.checkpoint_path;
      }

      if (can_serve) {
        Stopwatch serve_watch;
        std::vector<std::vector<double>> forecasts;
        const std::vector<int32_t>& clients = dataset->test_nodes();
        forecasts.reserve(clients.size());
        for (int32_t shop : clients) {
          forecasts.push_back(server.Predict(shop).gmv);
        }
        if (obs::Enabled()) {
          SchedulerMetrics::Get().serve_seconds.Observe(
              serve_watch.ElapsedSeconds());
        }
        report.served = true;
        report.fallback_requests = server.fallback_requests();
        report.online = core::Evaluator::FromPredictions(
            "Gaia (cycle " + std::to_string(cycle) + ")", *dataset, clients,
            forecasts);
        report.mean_latency_ms =
            server.total_latency_ms() /
            static_cast<double>(std::max<int64_t>(server.total_requests(), 1));
        // Online drift: this cycle's MAE vs the trailing-window mean of
        // previously served cycles. The first served cycle has no baseline
        // and scores 0 by definition.
        if (config_.drift_window_cycles > 0) {
          const double mae = report.online.overall.mae;
          if (!drift_window_maes.empty()) {
            double baseline = 0.0;
            for (double m : drift_window_maes) baseline += m;
            baseline /= static_cast<double>(drift_window_maes.size());
            report.drift_baseline_mae = baseline;
            report.drift_score =
                (mae - baseline) / std::max(baseline, 1e-12);
          }

          // Drift-triggered early retrain: don't wait a month on a score
          // this bad — retrain now on the same snapshot, serving every
          // request from the incumbent weights until the swap.
          if (config_.drift_trigger_threshold > 0.0 &&
              report.drift_score > config_.drift_trigger_threshold) {
            report.drift_triggered = true;
            const bool cooling =
                last_drift_retrain_cycle >= 0 &&
                cycle - last_drift_retrain_cycle <=
                    config_.drift_retrain_cooldown_cycles;
            if (cooling) {
              report.drift_suppressed = true;
              SchedulerMetrics::Get().drift_retrains_suppressed.Increment();
            } else {
              last_drift_retrain_cycle = cycle;
              SchedulerMetrics::Get().drift_retrains.Increment();
              // Perturbed seeds (init and sampling) so the early retrain
              // explores a different optimization path than the scheduled
              // one did — with full-batch training the train seed alone
              // would reproduce the incumbent weights exactly.
              OfflineTrainingPipeline::Config retrain_cfg = offline_cfg;
              const uint64_t salt =
                  7919ULL * static_cast<uint64_t>(cycle + 1);
              retrain_cfg.train.seed = config_.offline.train.seed + salt;
              retrain_cfg.model.seed = config_.offline.model.seed + salt;
              OfflineTrainingPipeline retrain_pipeline(retrain_cfg);
              OfflineTrainingPipeline::RunReport retrain_report;
              std::optional<Result<std::shared_ptr<core::GaiaModel>>>
                  retrained;
              std::thread retrain_thread([&] {
                std::shared_ptr<util::CancelToken> token;
                if (config_.train_deadline_ms > 0.0) {
                  token = util::CancelToken::WithDeadline(
                      config_.train_deadline_ms);
                }
                util::CancelScope scope(token.get());
                retrained.emplace(
                    retrain_pipeline.Run(*dataset, &retrain_report));
              });
              // Availability probe: the incumbent server answers the full
              // client sweep while the retrain runs. Serve is const and
              // thread-safe; InlineScope keeps the probe on the serial
              // exact path so it never contends with the trainer for the
              // pool — and the answers stay bitwise deterministic.
              {
                util::ThreadPool::InlineScope inline_scope;
                for (int32_t shop : clients) {
                  const auto probe = server.Serve(shop, 0.0);
                  ++report.during_retrain_requests;
                  if (static_cast<int64_t>(probe.gmv.size()) ==
                      dataset->horizon()) {
                    ++report.during_retrain_answered;
                  }
                }
              }
              retrain_thread.join();

              // Adopt: publish the fresh weights and hot-swap. Any failure
              // leaves the incumbent serving (verify-then-swap all the way
              // down), so the cycle stays served either way.
              Status adopted =
                  !retrained.has_value()
                      ? Status::Internal("drift retrain produced no result")
                      : (retrained->ok() ? Status::OK()
                                         : retrained->status());
              if (adopted.ok()) {
                if (store.has_value()) {
                  auto published = store->Publish(*retrained->value());
                  adopted = published.ok() ? server.LoadCheckpoint(*store)
                                           : published.status();
                  if (published.ok()) {
                    report.checkpoint_path = published.value();
                  }
                } else if (!offline_cfg.checkpoint_path.empty()) {
                  // Legacy single-file mode: the pipeline already saved to
                  // the configured path; hot-swap from it.
                  adopted =
                      server.LoadCheckpoint(offline_cfg.checkpoint_path);
                } else {
                  adopted = Status::FailedPrecondition(
                      "drift retrain has no checkpoint path to publish to");
                }
              }
              if (adopted.ok()) {
                report.drift_retrained = true;
                // Re-measure against the snapshot's ground truth: the
                // post-retrain MAE is the cycle's real score, and is what
                // enters the drift window below.
                std::vector<std::vector<double>> post_forecasts;
                post_forecasts.reserve(clients.size());
                {
                  util::ThreadPool::InlineScope inline_scope;
                  for (int32_t shop : clients) {
                    post_forecasts.push_back(server.Serve(shop, 0.0).gmv);
                  }
                }
                report.post_retrain_mae =
                    core::Evaluator::FromPredictions(
                        "Gaia (cycle " + std::to_string(cycle) +
                            " post-drift-retrain)",
                        *dataset, clients, post_forecasts)
                        .overall.mae;
              } else {
                fail_step(adopted);
              }
            }
          }

          // Window update: rolled-back cycles are scored above but never
          // pushed — their MAE measures stale weights, not the market. A
          // drift-retrained cycle enters with its post-retrain MAE.
          if (!report.rolled_back) {
            drift_window_maes.push_back(
                report.drift_retrained ? report.post_retrain_mae : mae);
            if (drift_window_maes.size() >
                static_cast<size_t>(config_.drift_window_cycles)) {
              drift_window_maes.erase(drift_window_maes.begin());
            }
          }
          SchedulerMetrics::Get().drift_score.Set(report.drift_score);
          SchedulerMetrics::Get().drift_window.Set(
              static_cast<double>(drift_window_maes.size()));
        }
      }
    }
    if (!can_serve) SchedulerMetrics::Get().cycles_skipped.Increment();
    if (!report.healthy) SchedulerMetrics::Get().cycle_failures.Increment();
    if (obs::Enabled()) {
      SchedulerMetrics::Get().cycle_seconds.Observe(
          cycle_watch.ElapsedSeconds());
    }
    reports.push_back(std::move(report));
  }

  // Only a schedule in which every single cycle failed to serve is a hard
  // error — that means the pipeline never produced a usable model.
  bool any_served = reports.empty();
  for (const CycleReport& report : reports) any_served |= report.served;
  if (!any_served) {
    for (const CycleReport& report : reports) {
      if (!report.error.ok()) return report.error;
    }
    return Status::Internal("monthly schedule served no cycle");
  }
  return reports;
}

}  // namespace gaia::serving
