#include "serving/monthly_scheduler.h"

#include "data/dataset.h"
#include "obs/obs.h"

namespace gaia::serving {

Result<std::vector<MonthlyScheduler::CycleReport>> MonthlyScheduler::Run()
    const {
  std::vector<CycleReport> reports;
  reports.reserve(static_cast<size_t>(config_.num_cycles));
  for (int cycle = 0; cycle < config_.num_cycles; ++cycle) {
    GAIA_OBS_SPAN("scheduler.cycle");
    if (obs::Enabled()) {
      obs::MetricsRegistry::Global()
          .GetCounter("gaia_scheduler_cycles_total",
                      "Monthly retrain+serve cycles completed")
          .Increment();
    }
    // The month advances: calendar shifts and the population is redrawn.
    data::MarketConfig market_cfg = config_.market;
    market_cfg.start_calendar_month =
        (config_.market.start_calendar_month + cycle) % 12;
    market_cfg.seed = config_.market.seed + static_cast<uint64_t>(cycle);
    auto market = data::MarketSimulator(market_cfg).Generate();
    if (!market.ok()) return market.status();
    auto dataset_result =
        data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
    if (!dataset_result.ok()) return dataset_result.status();
    auto dataset = std::make_shared<data::ForecastDataset>(
        std::move(dataset_result).value());

    // Offline retrain + publish.
    OfflineTrainingPipeline pipeline(config_.offline);
    OfflineTrainingPipeline::RunReport offline_report;
    auto model = pipeline.Run(*dataset, &offline_report);
    if (!model.ok()) return model.status();

    // Online serving of this month's newcomer requests.
    ModelServer server(model.value(), dataset, config_.server);
    if (!config_.offline.checkpoint_path.empty()) {
      GAIA_RETURN_NOT_OK(
          server.LoadCheckpoint(config_.offline.checkpoint_path));
    }
    std::vector<std::vector<double>> forecasts;
    const std::vector<int32_t>& clients = dataset->test_nodes();
    forecasts.reserve(clients.size());
    for (int32_t shop : clients) {
      forecasts.push_back(server.Predict(shop).gmv);
    }

    CycleReport report;
    report.cycle = cycle;
    report.calendar_start_month = market_cfg.start_calendar_month;
    report.train = offline_report.train;
    report.online = core::Evaluator::FromPredictions(
        "Gaia (cycle " + std::to_string(cycle) + ")", *dataset, clients,
        forecasts);
    report.mean_latency_ms =
        server.total_latency_ms() /
        static_cast<double>(std::max<int64_t>(server.total_requests(), 1));
    report.graph_edges = dataset->graph().num_edges();
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace gaia::serving
