#include "autograd/variable.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>

#include "util/check.h"

namespace gaia::autograd {

namespace {
std::atomic<uint64_t> g_next_id{1};
}  // namespace

AutogradNode::AutogradNode(Tensor value_in)
    : value(std::move(value_in)), id(g_next_id.fetch_add(1)) {}

void AutogradNode::EnsureGrad() {
  if (grad.empty() && value.size() > 0) grad = Tensor(value.shape());
}

void AutogradNode::AccumulateGrad(const Tensor& delta) {
  EnsureGrad();
  grad.Accumulate(delta);
}

void AutogradNode::ZeroGrad() {
  if (!grad.empty()) grad.Fill(0.0f);
}

Var Constant(Tensor value) {
  return std::make_shared<AutogradNode>(std::move(value));
}

Var Parameter(Tensor value) {
  Var node = std::make_shared<AutogradNode>(std::move(value));
  node->requires_grad = true;
  return node;
}

void Backward(const Var& root, const Tensor& seed) {
  GAIA_CHECK(root != nullptr);
  GAIA_CHECK(root->value.SameShape(seed));
  // Collect all reachable nodes that require grad.
  std::vector<AutogradNode*> order;
  std::unordered_set<AutogradNode*> seen;
  std::vector<AutogradNode*> stack = {root.get()};
  seen.insert(root.get());
  while (!stack.empty()) {
    AutogradNode* node = stack.back();
    stack.pop_back();
    order.push_back(node);
    for (const Var& parent : node->parents) {
      if (parent->requires_grad && seen.insert(parent.get()).second) {
        stack.push_back(parent.get());
      }
    }
  }
  // Descending creation id == reverse topological order.
  std::sort(order.begin(), order.end(),
            [](const AutogradNode* a, const AutogradNode* b) {
              return a->id > b->id;
            });
  root->AccumulateGrad(seed);
  for (AutogradNode* node : order) {
    if (node->backward_fn && node->requires_grad && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

void Backward(const Var& root) {
  GAIA_CHECK(root != nullptr);
  Backward(root, Tensor::Ones(root->value.shape()));
}

}  // namespace gaia::autograd
