#include "autograd/variable.h"

#include <atomic>
#include <unordered_set>

#include "obs/obs.h"
#include "util/check.h"

namespace gaia::autograd {

namespace {
std::atomic<uint64_t> g_next_id{1};
}  // namespace

AutogradNode::AutogradNode(Tensor value_in)
    : value(std::move(value_in)), id(g_next_id.fetch_add(1)) {}

void AutogradNode::EnsureGrad() {
  if (grad.empty() && value.size() > 0) grad = Tensor(value.shape());
}

void AutogradNode::AccumulateGrad(const Tensor& delta) {
  EnsureGrad();
  grad.Accumulate(delta);
}

void AutogradNode::ZeroGrad() {
  if (!grad.empty()) grad.Fill(0.0f);
}

Var Constant(Tensor value) {
  return std::make_shared<AutogradNode>(std::move(value));
}

Var Parameter(Tensor value) {
  Var node = std::make_shared<AutogradNode>(std::move(value));
  node->requires_grad = true;
  return node;
}

void Backward(const Var& root, const Tensor& seed) {
  GAIA_CHECK(root != nullptr);
  GAIA_CHECK(root->value.SameShape(seed));
  GAIA_OBS_SPAN("autograd.backward");
  // Reverse-topological order via iterative DFS post-order over the parents
  // of grad-requiring nodes. For every child -> parent edge the child
  // finishes after the parent, so the reversed finish order processes each
  // node before any of its parents — i.e. a node's grad is fully accumulated
  // before its backward_fn fires. Unlike a creation-id sort, this order
  // depends only on graph structure (root identity and the parents vectors),
  // not on how node ids interleaved during a multi-threaded forward pass, so
  // gradient accumulation order — and hence every gradient bit — is
  // identical at any thread count.
  struct Frame {
    AutogradNode* node;
    size_t next_parent;
  };
  std::vector<AutogradNode*> post_order;
  std::unordered_set<AutogradNode*> seen;
  std::vector<Frame> stack;
  stack.push_back(Frame{root.get(), 0});
  seen.insert(root.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      AutogradNode* parent = frame.node->parents[frame.next_parent++].get();
      if (parent->requires_grad && seen.insert(parent).second) {
        stack.push_back(Frame{parent, 0});
      }
    } else {
      post_order.push_back(frame.node);
      stack.pop_back();
    }
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global()
        .GetCounter("gaia_autograd_backward_total",
                    "Backward passes executed")
        .Increment();
    obs::MetricsRegistry::Global()
        .GetCounter("gaia_autograd_nodes_total",
                    "Grad-requiring nodes visited by Backward")
        .Increment(post_order.size());
  }
  root->AccumulateGrad(seed);
  for (auto it = post_order.rbegin(); it != post_order.rend(); ++it) {
    AutogradNode* node = *it;
    if (node->backward_fn && node->requires_grad && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

void Backward(const Var& root) {
  GAIA_CHECK(root != nullptr);
  Backward(root, Tensor::Ones(root->value.shape()));
}

}  // namespace gaia::autograd
