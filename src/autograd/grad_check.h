#ifndef GAIA_AUTOGRAD_GRAD_CHECK_H_
#define GAIA_AUTOGRAD_GRAD_CHECK_H_

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace gaia::autograd {

/// \brief Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = false;
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::string detail;  ///< Describes the worst element when the check fails.
};

/// \brief Compares the analytic gradient of a scalar-valued graph against
/// central finite differences.
///
/// `build` must construct a scalar (shape [1]) output from the given
/// parameter vars each time it is called; it is re-invoked after each
/// perturbation, so it must be a pure function of the parameters.
GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& build,
    std::vector<Var> params, double epsilon = 1e-3, double tolerance = 1e-2);

}  // namespace gaia::autograd

#endif  // GAIA_AUTOGRAD_GRAD_CHECK_H_
