#ifndef GAIA_AUTOGRAD_OPS_H_
#define GAIA_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor_ops.h"

namespace gaia::autograd {

// All ops build a fresh graph node whose backward closure propagates
// gradients to any parent with requires_grad. Shape preconditions mirror the
// underlying tensor ops and abort on violation.

// -- arithmetic -------------------------------------------------------------

Var Add(const Var& a, const Var& b);            ///< Elementwise a + b.
Var Sub(const Var& a, const Var& b);            ///< Elementwise a - b.
Var Mul(const Var& a, const Var& b);            ///< Hadamard product.
Var Div(const Var& a, const Var& b);            ///< Elementwise a / b.
Var Neg(const Var& a);                          ///< Elementwise negation.
Var ScalarMul(const Var& a, float s);           ///< a * s with constant s.

/// Elementwise sum of several same-shaped vars (neighbour aggregation).
Var AddN(const std::vector<Var>& parts);

/// Matrix (or any tensor) scaled by a differentiable scalar of shape [1].
Var ScaleByScalar(const Var& a, const Var& scalar);

// -- linear algebra ----------------------------------------------------------

Var MatMul(const Var& a, const Var& b);         ///< [m,k] x [k,n] -> [m,n].
Var Transpose(const Var& a);                    ///< 2-D transpose.
Var Dot(const Var& a, const Var& b);            ///< [n] . [n] -> [1].

// -- activations --------------------------------------------------------------

Var Relu(const Var& a);
Var Sigmoid(const Var& a);
Var Tanh(const Var& a);
Var Exp(const Var& a);
Var Log(const Var& a);   ///< Natural log; pre: strictly positive values.
Var Sqrt(const Var& a);  ///< Elementwise square root; pre: positive values.

// -- softmax ------------------------------------------------------------------

/// Row-wise softmax; apply additive masks (e.g. CausalMask) to the logits
/// before calling. Fully masked rows yield zero rows.
Var SoftmaxRows(const Var& logits);

/// Softmax over a 1-D logits vector.
Var Softmax1D(const Var& logits);

// -- shape --------------------------------------------------------------------

Var Reshape(const Var& a, std::vector<int64_t> shape);
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int64_t start, int64_t len);
Var SliceRows(const Var& a, int64_t start, int64_t len);

/// Row `i` of a 2-D tensor as a 1-D var (embedding lookup).
Var SelectRow(const Var& a, int64_t i);

/// Stacks scalar vars of shape [1] into a 1-D var of shape [n].
Var StackScalars(const std::vector<Var>& scalars);

/// Element `i` of a 1-D var, as shape [1].
Var SelectScalar(const Var& a, int64_t i);

/// Contiguous span [start, start+len) of a 1-D var.
Var SelectSpan(const Var& a, int64_t start, int64_t len);

// -- broadcasting -------------------------------------------------------------

/// Adds 1-D var `v` (length C) to every row of 2-D var `a` ([R,C]).
Var AddRowVector(const Var& a, const Var& v);

// -- convolution ----------------------------------------------------------------

/// 1-D convolution along time. `bias` may be null. See tensor_ops Conv1d.
Var Conv1d(const Var& input, const Var& weight, const Var& bias, PadMode mode,
           int64_t dilation = 1);

// -- normalization ----------------------------------------------------------------

/// Fused per-row layer normalization with affine parameters gamma/beta [C].
Var LayerNormRows(const Var& a, const Var& gamma, const Var& beta,
                  float eps = 1e-5f);

// -- reductions and losses ---------------------------------------------------------

Var SumAll(const Var& a);                        ///< -> [1].
Var MeanAll(const Var& a);                       ///< -> [1].

/// Mean squared error between prediction and a constant target (Eq. 10).
Var MseLoss(const Var& pred, const Tensor& target);

/// Mean absolute error (used by some baseline training recipes).
Var MaeLoss(const Var& pred, const Tensor& target);

}  // namespace gaia::autograd

#endif  // GAIA_AUTOGRAD_OPS_H_
