#ifndef GAIA_AUTOGRAD_VARIABLE_H_
#define GAIA_AUTOGRAD_VARIABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace gaia::autograd {

class AutogradNode;

/// A differentiable value: shared handle to a node in the dynamically built
/// computation graph. Ops (see ops.h) take and return Vars.
using Var = std::shared_ptr<AutogradNode>;

/// \brief One node of the reverse-mode tape.
///
/// Nodes may be created concurrently (forward passes parallelize over nodes
/// and edges); ids come from an atomic counter and are only a debugging aid.
/// Backward derives its reverse-topological order from the graph structure
/// itself, so gradients are bitwise identical at any thread count.
/// Leaf parameters persist across steps (grads accumulate until ZeroGrad);
/// interior nodes are released when the last Var referencing the loss dies.
class AutogradNode {
 public:
  explicit AutogradNode(Tensor value_in);

  /// Value computed in the forward pass.
  Tensor value;

  /// Accumulated gradient dL/d(value); empty until first touched.
  Tensor grad;

  /// True when this node or any ancestor is a trainable parameter.
  bool requires_grad = false;

  /// Creation sequence number (diagnostic only; see class comment).
  uint64_t id = 0;

  /// Direct inputs of the op that produced this node.
  std::vector<Var> parents;

  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void(AutogradNode&)> backward_fn;

  /// Lazily allocates a zero gradient matching `value`'s shape.
  void EnsureGrad();

  /// Adds `delta` into the gradient (allocating it first if needed).
  void AccumulateGrad(const Tensor& delta);

  /// Clears the gradient to zeros (keeps allocation if present).
  void ZeroGrad();
};

/// Wraps a tensor as a non-trainable graph input.
Var Constant(Tensor value);

/// Wraps a tensor as a trainable parameter (requires_grad = true).
Var Parameter(Tensor value);

/// Runs backpropagation from `root`, seeding d(root)/d(root) with ones.
/// Typically `root` is a scalar loss of shape [1].
void Backward(const Var& root);

/// Runs backpropagation with an explicit seed gradient (same shape as root).
void Backward(const Var& root, const Tensor& seed);

}  // namespace gaia::autograd

#endif  // GAIA_AUTOGRAD_VARIABLE_H_
