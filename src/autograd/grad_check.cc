#include "autograd/grad_check.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace gaia::autograd {

GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& build,
    std::vector<Var> params, double epsilon, double tolerance) {
  // Analytic pass.
  for (const Var& p : params) p->ZeroGrad();
  Var out = build(params);
  GAIA_CHECK_EQ(out->value.size(), 1) << "grad check needs scalar output";
  Backward(out);

  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const Var& p : params) {
    p->EnsureGrad();
    analytic.push_back(p->grad);
  }

  GradCheckResult result;
  result.ok = true;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Var& p = params[pi];
    for (int64_t i = 0; i < p->value.size(); ++i) {
      const float original = p->value.data()[i];
      p->value.data()[i] = original + static_cast<float>(epsilon);
      const double f_plus = build(params)->value.data()[0];
      p->value.data()[i] = original - static_cast<float>(epsilon);
      const double f_minus = build(params)->value.data()[0];
      p->value.data()[i] = original;
      const double numeric = (f_plus - f_minus) / (2.0 * epsilon);
      const double exact = analytic[pi].data()[i];
      const double abs_err = std::fabs(numeric - exact);
      const double denom = std::max(1.0, std::max(std::fabs(numeric),
                                                  std::fabs(exact)));
      const double rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
      if (rel_err > tolerance) {
        result.ok = false;
        if (result.detail.empty()) {
          std::ostringstream os;
          os << "param " << pi << " elem " << i << ": analytic " << exact
             << " vs numeric " << numeric;
          result.detail = os.str();
        }
      }
    }
  }
  return result;
}

}  // namespace gaia::autograd
