#include "autograd/ops.h"

#include <cmath>

#include "util/check.h"

namespace gaia::autograd {

namespace {

/// Creates an op node; prunes the backward closure when no parent needs grad.
Var MakeOp(Tensor value, std::vector<Var> parents,
           std::function<void(AutogradNode&)> backward_fn) {
  Var node = std::make_shared<AutogradNode>(std::move(value));
  bool needs_grad = false;
  for (const Var& p : parents) {
    GAIA_CHECK(p != nullptr);
    needs_grad = needs_grad || p->requires_grad;
  }
  if (needs_grad) {
    node->requires_grad = true;
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward_fn);
  }
  return node;
}

/// Accumulates into a parent only when it participates in the tape.
void AddGrad(const Var& parent, const Tensor& delta) {
  if (parent->requires_grad) parent->AccumulateGrad(delta);
}

}  // namespace

Var Add(const Var& a, const Var& b) {
  return MakeOp(a->value + b->value, {a, b}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad);
    AddGrad(n.parents[1], n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  return MakeOp(a->value - b->value, {a, b}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad);
    AddGrad(n.parents[1], n.grad * -1.0f);
  });
}

Var Mul(const Var& a, const Var& b) {
  return MakeOp(a->value * b->value, {a, b}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad * n.parents[1]->value);
    AddGrad(n.parents[1], n.grad * n.parents[0]->value);
  });
}

Var Div(const Var& a, const Var& b) {
  return MakeOp(a->value / b->value, {a, b}, [](AutogradNode& n) {
    const Tensor& bv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      n.parents[0]->AccumulateGrad(n.grad / bv);
    }
    if (n.parents[1]->requires_grad) {
      // d(a/b)/db = -a / b^2 = -y / b
      n.parents[1]->AccumulateGrad((n.grad * n.value) / bv * -1.0f);
    }
  });
}

Var Neg(const Var& a) { return ScalarMul(a, -1.0f); }

Var ScalarMul(const Var& a, float s) {
  return MakeOp(a->value * s, {a}, [s](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad * s);
  });
}

Var AddN(const std::vector<Var>& parts) {
  GAIA_CHECK(!parts.empty());
  Tensor sum = parts[0]->value;
  for (size_t i = 1; i < parts.size(); ++i) sum.Accumulate(parts[i]->value);
  return MakeOp(std::move(sum), parts, [](AutogradNode& n) {
    for (const Var& p : n.parents) AddGrad(p, n.grad);
  });
}

Var ScaleByScalar(const Var& a, const Var& scalar) {
  GAIA_CHECK_EQ(scalar->value.size(), 1);
  const float s = scalar->value.data()[0];
  return MakeOp(a->value * s, {a, scalar}, [](AutogradNode& n) {
    const float sv = n.parents[1]->value.data()[0];
    AddGrad(n.parents[0], n.grad * sv);
    if (n.parents[1]->requires_grad) {
      double acc = 0.0;
      const Tensor& av = n.parents[0]->value;
      for (int64_t i = 0; i < av.size(); ++i) {
        acc += static_cast<double>(n.grad.data()[i]) * av.data()[i];
      }
      Tensor ds({1});
      ds.at(0) = static_cast<float>(acc);
      n.parents[1]->AccumulateGrad(ds);
    }
  });
}

Var MatMul(const Var& a, const Var& b) {
  return MakeOp(gaia::MatMul(a->value, b->value), {a, b}, [](AutogradNode& n) {
    const Tensor& av = n.parents[0]->value;
    const Tensor& bv = n.parents[1]->value;
    if (n.parents[0]->requires_grad) {
      AddGrad(n.parents[0], gaia::MatMul(n.grad, gaia::Transpose(bv)));
    }
    if (n.parents[1]->requires_grad) {
      AddGrad(n.parents[1], gaia::MatMul(gaia::Transpose(av), n.grad));
    }
  });
}

Var Transpose(const Var& a) {
  return MakeOp(gaia::Transpose(a->value), {a}, [](AutogradNode& n) {
    AddGrad(n.parents[0], gaia::Transpose(n.grad));
  });
}

Var Dot(const Var& a, const Var& b) {
  Tensor out({1});
  out.at(0) = gaia::Dot(a->value, b->value);
  return MakeOp(std::move(out), {a, b}, [](AutogradNode& n) {
    const float g = n.grad.data()[0];
    AddGrad(n.parents[0], n.parents[1]->value * g);
    AddGrad(n.parents[1], n.parents[0]->value * g);
  });
}

Var Relu(const Var& a) {
  return MakeOp(gaia::Relu(a->value), {a}, [](AutogradNode& n) {
    Tensor dx = n.grad;
    const Tensor& x = n.parents[0]->value;
    for (int64_t i = 0; i < dx.size(); ++i) {
      if (x.data()[i] <= 0.0f) dx.data()[i] = 0.0f;
    }
    AddGrad(n.parents[0], dx);
  });
}

Var Sigmoid(const Var& a) {
  return MakeOp(gaia::Sigmoid(a->value), {a}, [](AutogradNode& n) {
    Tensor dx = n.grad;
    for (int64_t i = 0; i < dx.size(); ++i) {
      const float y = n.value.data()[i];
      dx.data()[i] *= y * (1.0f - y);
    }
    AddGrad(n.parents[0], dx);
  });
}

Var Tanh(const Var& a) {
  return MakeOp(gaia::Tanh(a->value), {a}, [](AutogradNode& n) {
    Tensor dx = n.grad;
    for (int64_t i = 0; i < dx.size(); ++i) {
      const float y = n.value.data()[i];
      dx.data()[i] *= 1.0f - y * y;
    }
    AddGrad(n.parents[0], dx);
  });
}

Var Exp(const Var& a) {
  return MakeOp(gaia::Exp(a->value), {a}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad * n.value);
  });
}

Var Log(const Var& a) {
  return MakeOp(gaia::Log(a->value), {a}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad / n.parents[0]->value);
  });
}

Var Sqrt(const Var& a) {
  return MakeOp(gaia::Sqrt(a->value), {a}, [](AutogradNode& n) {
    // d sqrt(x)/dx = 1 / (2 sqrt(x)) = 1 / (2 y)
    AddGrad(n.parents[0], n.grad / (n.value * 2.0f));
  });
}

Var SoftmaxRows(const Var& logits) {
  return MakeOp(gaia::SoftmaxRows(logits->value), {logits}, [](AutogradNode& n) {
    AddGrad(n.parents[0], gaia::SoftmaxRowsBackward(n.value, n.grad));
  });
}

Var Softmax1D(const Var& logits) {
  GAIA_CHECK_EQ(logits->value.ndim(), 1);
  const int64_t len = logits->value.dim(0);
  Var as_row = Reshape(logits, {1, len});
  return Reshape(SoftmaxRows(as_row), {len});
}

Var Reshape(const Var& a, std::vector<int64_t> shape) {
  Tensor value = a->value.Reshape(shape);
  return MakeOp(std::move(value), {a}, [](AutogradNode& n) {
    AddGrad(n.parents[0], n.grad.Reshape(n.parents[0]->value.shape()));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p->value);
  return MakeOp(gaia::ConcatCols(values), parts, [](AutogradNode& n) {
    int64_t offset = 0;
    for (const Var& p : n.parents) {
      const int64_t cols = p->value.dim(1);
      AddGrad(p, gaia::SliceCols(n.grad, offset, cols));
      offset += cols;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Var& p : parts) values.push_back(p->value);
  return MakeOp(gaia::ConcatRows(values), parts, [](AutogradNode& n) {
    int64_t offset = 0;
    for (const Var& p : n.parents) {
      const int64_t rows = p->value.dim(0);
      AddGrad(p, gaia::SliceRows(n.grad, offset, rows));
      offset += rows;
    }
  });
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  return MakeOp(gaia::SliceCols(a->value, start, len), {a},
                [start, len](AutogradNode& n) {
                  const Var& p = n.parents[0];
                  if (!p->requires_grad) return;
                  Tensor scatter(p->value.shape());
                  for (int64_t i = 0; i < n.grad.dim(0); ++i) {
                    for (int64_t j = 0; j < len; ++j) {
                      scatter.at(i, start + j) = n.grad.at(i, j);
                    }
                  }
                  p->AccumulateGrad(scatter);
                });
}

Var SliceRows(const Var& a, int64_t start, int64_t len) {
  return MakeOp(gaia::SliceRows(a->value, start, len), {a},
                [start, len](AutogradNode& n) {
                  const Var& p = n.parents[0];
                  if (!p->requires_grad) return;
                  Tensor scatter(p->value.shape());
                  for (int64_t i = 0; i < len; ++i) {
                    for (int64_t j = 0; j < n.grad.dim(1); ++j) {
                      scatter.at(start + i, j) = n.grad.at(i, j);
                    }
                  }
                  p->AccumulateGrad(scatter);
                });
}

Var SelectRow(const Var& a, int64_t i) {
  GAIA_CHECK_EQ(a->value.ndim(), 2);
  const int64_t cols = a->value.dim(1);
  Tensor row({cols});
  for (int64_t j = 0; j < cols; ++j) row.at(j) = a->value.at(i, j);
  return MakeOp(std::move(row), {a}, [i](AutogradNode& n) {
    const Var& p = n.parents[0];
    if (!p->requires_grad) return;
    Tensor scatter(p->value.shape());
    for (int64_t j = 0; j < n.grad.dim(0); ++j) scatter.at(i, j) = n.grad.at(j);
    p->AccumulateGrad(scatter);
  });
}

Var StackScalars(const std::vector<Var>& scalars) {
  GAIA_CHECK(!scalars.empty());
  Tensor value({static_cast<int64_t>(scalars.size())});
  for (size_t i = 0; i < scalars.size(); ++i) {
    GAIA_CHECK_EQ(scalars[i]->value.size(), 1);
    value.at(static_cast<int64_t>(i)) = scalars[i]->value.data()[0];
  }
  return MakeOp(std::move(value), scalars, [](AutogradNode& n) {
    for (size_t i = 0; i < n.parents.size(); ++i) {
      Tensor g({1});
      g.at(0) = n.grad.at(static_cast<int64_t>(i));
      AddGrad(n.parents[i], g);
    }
  });
}

Var SelectScalar(const Var& a, int64_t i) {
  GAIA_CHECK_EQ(a->value.ndim(), 1);
  Tensor value({1});
  value.at(0) = a->value.at(i);
  return MakeOp(std::move(value), {a}, [i](AutogradNode& n) {
    const Var& p = n.parents[0];
    if (!p->requires_grad) return;
    Tensor scatter(p->value.shape());
    scatter.at(i) = n.grad.at(0);
    p->AccumulateGrad(scatter);
  });
}

Var SelectSpan(const Var& a, int64_t start, int64_t len) {
  GAIA_CHECK_EQ(a->value.ndim(), 1);
  GAIA_CHECK_GE(start, 0);
  GAIA_CHECK_LE(start + len, a->value.dim(0));
  Tensor value({len});
  for (int64_t i = 0; i < len; ++i) value.at(i) = a->value.at(start + i);
  return MakeOp(std::move(value), {a}, [start, len](AutogradNode& n) {
    const Var& p = n.parents[0];
    if (!p->requires_grad) return;
    Tensor scatter(p->value.shape());
    for (int64_t i = 0; i < len; ++i) scatter.at(start + i) = n.grad.at(i);
    p->AccumulateGrad(scatter);
  });
}

Var AddRowVector(const Var& a, const Var& v) {
  return MakeOp(gaia::AddRowVector(a->value, v->value), {a, v},
                [](AutogradNode& n) {
                  AddGrad(n.parents[0], n.grad);
                  AddGrad(n.parents[1], gaia::SumAxis0(n.grad));
                });
}

Var Conv1d(const Var& input, const Var& weight, const Var& bias, PadMode mode,
           int64_t dilation) {
  static const Tensor kNoBias;
  const Tensor& bias_value = bias ? bias->value : kNoBias;
  // Validate through the Result-returning checker so every shape rule lives
  // in one place; a mismatch here is a model-construction bug, so abort with
  // the checker's message rather than threading Status through Var.
  Result<Tensor> out = gaia::Conv1dChecked(input->value, weight->value,
                                           bias_value, mode, dilation);
  GAIA_CHECK(out.ok()) << out.status().ToString();
  std::vector<Var> parents = {input, weight};
  if (bias) parents.push_back(bias);
  const bool has_bias = bias != nullptr;
  return MakeOp(std::move(out).value(), std::move(parents),
                [mode, dilation, has_bias](AutogradNode& n) {
                  const Var& in = n.parents[0];
                  const Var& w = n.parents[1];
                  if (in->requires_grad) {
                    in->AccumulateGrad(Conv1dBackwardInput(
                        n.grad, w->value, in->value.dim(0), mode, dilation));
                  }
                  if (w->requires_grad) {
                    w->AccumulateGrad(Conv1dBackwardWeight(
                        n.grad, in->value, w->value.dim(1), mode, dilation));
                  }
                  if (has_bias && n.parents[2]->requires_grad) {
                    n.parents[2]->AccumulateGrad(Conv1dBackwardBias(n.grad));
                  }
                });
}

Var LayerNormRows(const Var& a, const Var& gamma, const Var& beta, float eps) {
  GAIA_CHECK_EQ(a->value.ndim(), 2);
  const int64_t rows = a->value.dim(0), cols = a->value.dim(1);
  GAIA_CHECK_EQ(gamma->value.dim(0), cols);
  GAIA_CHECK_EQ(beta->value.dim(0), cols);
  // Save normalized activations and inverse stddev for the backward pass.
  auto x_hat = std::make_shared<Tensor>(Tensor({rows, cols}));
  auto inv_std = std::make_shared<Tensor>(Tensor({rows}));
  Tensor out({rows, cols});
  for (int64_t i = 0; i < rows; ++i) {
    double mean = 0.0;
    for (int64_t j = 0; j < cols; ++j) mean += a->value.at(i, j);
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      const double d = a->value.at(i, j) - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float istd = static_cast<float>(1.0 / std::sqrt(var + eps));
    inv_std->at(i) = istd;
    for (int64_t j = 0; j < cols; ++j) {
      const float xh =
          (a->value.at(i, j) - static_cast<float>(mean)) * istd;
      x_hat->at(i, j) = xh;
      out.at(i, j) = gamma->value.at(j) * xh + beta->value.at(j);
    }
  }
  return MakeOp(std::move(out), {a, gamma, beta},
                [x_hat, inv_std](AutogradNode& n) {
                  const Var& a_in = n.parents[0];
                  const Var& g_in = n.parents[1];
                  const Var& b_in = n.parents[2];
                  const int64_t rows = n.grad.dim(0), cols = n.grad.dim(1);
                  if (g_in->requires_grad) {
                    Tensor dgamma({cols});
                    for (int64_t i = 0; i < rows; ++i) {
                      for (int64_t j = 0; j < cols; ++j) {
                        dgamma.at(j) += n.grad.at(i, j) * x_hat->at(i, j);
                      }
                    }
                    g_in->AccumulateGrad(dgamma);
                  }
                  if (b_in->requires_grad) {
                    b_in->AccumulateGrad(gaia::SumAxis0(n.grad));
                  }
                  if (a_in->requires_grad) {
                    Tensor dx({rows, cols});
                    for (int64_t i = 0; i < rows; ++i) {
                      double mean_dxh = 0.0, mean_dxh_xh = 0.0;
                      for (int64_t j = 0; j < cols; ++j) {
                        const double dxh =
                            static_cast<double>(n.grad.at(i, j)) *
                            g_in->value.at(j);
                        mean_dxh += dxh;
                        mean_dxh_xh += dxh * x_hat->at(i, j);
                      }
                      mean_dxh /= static_cast<double>(cols);
                      mean_dxh_xh /= static_cast<double>(cols);
                      for (int64_t j = 0; j < cols; ++j) {
                        const double dxh =
                            static_cast<double>(n.grad.at(i, j)) *
                            g_in->value.at(j);
                        dx.at(i, j) = static_cast<float>(
                            inv_std->at(i) *
                            (dxh - mean_dxh - x_hat->at(i, j) * mean_dxh_xh));
                      }
                    }
                    a_in->AccumulateGrad(dx);
                  }
                });
}

Var SumAll(const Var& a) {
  Tensor out({1});
  out.at(0) = static_cast<float>(a->value.Sum());
  return MakeOp(std::move(out), {a}, [](AutogradNode& n) {
    const float g = n.grad.data()[0];
    AddGrad(n.parents[0], Tensor::Full(n.parents[0]->value.shape(), g));
  });
}

Var MeanAll(const Var& a) {
  GAIA_CHECK_GT(a->value.size(), 0);
  return ScalarMul(SumAll(a), 1.0f / static_cast<float>(a->value.size()));
}

Var MseLoss(const Var& pred, const Tensor& target) {
  GAIA_CHECK(pred->value.SameShape(target));
  const int64_t n_elems = pred->value.size();
  Tensor out({1});
  double acc = 0.0;
  for (int64_t i = 0; i < n_elems; ++i) {
    const double d = pred->value.data()[i] - target.data()[i];
    acc += d * d;
  }
  out.at(0) = static_cast<float>(acc / static_cast<double>(n_elems));
  return MakeOp(std::move(out), {pred}, [target, n_elems](AutogradNode& n) {
    const float g = n.grad.data()[0] * 2.0f / static_cast<float>(n_elems);
    Tensor dpred = (n.parents[0]->value - target) * g;
    AddGrad(n.parents[0], dpred);
  });
}

Var MaeLoss(const Var& pred, const Tensor& target) {
  GAIA_CHECK(pred->value.SameShape(target));
  const int64_t n_elems = pred->value.size();
  Tensor out({1});
  double acc = 0.0;
  for (int64_t i = 0; i < n_elems; ++i) {
    acc += std::fabs(pred->value.data()[i] - target.data()[i]);
  }
  out.at(0) = static_cast<float>(acc / static_cast<double>(n_elems));
  return MakeOp(std::move(out), {pred}, [target, n_elems](AutogradNode& n) {
    const float g = n.grad.data()[0] / static_cast<float>(n_elems);
    Tensor dpred(n.parents[0]->value.shape());
    for (int64_t i = 0; i < n_elems; ++i) {
      const float d = n.parents[0]->value.data()[i] - target.data()[i];
      dpred.data()[i] = d > 0.0f ? g : (d < 0.0f ? -g : 0.0f);
    }
    AddGrad(n.parents[0], dpred);
  });
}

}  // namespace gaia::autograd
