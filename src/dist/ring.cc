#include "dist/ring.h"

#include <vector>

namespace gaia::dist {

BlockRange RingBlock(int64_t len, int world, int block) {
  GAIA_CHECK(world > 0);
  GAIA_CHECK(block >= 0 && block < world);
  BlockRange r;
  r.begin = block * len / world;
  r.end = (block + 1) * len / world;
  return r;
}

Status RingAllReduceSum(int pos, int world, float* data, int64_t len,
                        const RingTransport& transport) {
  GAIA_CHECK(world > 0);
  GAIA_CHECK(pos >= 0 && pos < world);
  if (world == 1) return Status::OK();

  const int M = world;
  // Scratch large enough for the biggest block.
  int64_t max_block = 0;
  for (int b = 0; b < M; ++b) {
    const BlockRange r = RingBlock(len, M, b);
    if (r.end - r.begin > max_block) max_block = r.end - r.begin;
  }
  std::vector<float> scratch(static_cast<size_t>(max_block));

  // Phase 1: reduce-scatter. Incoming block is accumulated into the local
  // buffer; because FP addition is bitwise commutative, local += incoming
  // reproduces the rank-ordered chain regardless of operand order here.
  for (int s = 0; s < M - 1; ++s) {
    const int send_block = ((pos - s) % M + M) % M;
    const int recv_block = ((pos - s - 1) % M + M) % M;
    const BlockRange sr = RingBlock(len, M, send_block);
    const BlockRange rr = RingBlock(len, M, recv_block);
    Status st = transport.send(s, send_block, data + sr.begin,
                               sr.end - sr.begin);
    if (!st.ok()) return st;
    st = transport.recv(s, recv_block, scratch.data(), rr.end - rr.begin);
    if (!st.ok()) return st;
    float* local = data + rr.begin;
    const int64_t count = rr.end - rr.begin;
    for (int64_t i = 0; i < count; ++i) local[i] += scratch[i];
  }

  // Phase 2: all-gather. Position p now owns the fully reduced block
  // (p + 1) mod M; circulate the finished blocks, overwriting local copies.
  for (int s = 0; s < M - 1; ++s) {
    const int send_block = ((pos + 1 - s) % M + M) % M;
    const int recv_block = ((pos - s) % M + M) % M;
    const BlockRange sr = RingBlock(len, M, send_block);
    const BlockRange rr = RingBlock(len, M, recv_block);
    Status st = transport.send(M - 1 + s, send_block, data + sr.begin,
                               sr.end - sr.begin);
    if (!st.ok()) return st;
    st = transport.recv(M - 1 + s, recv_block, data + rr.begin,
                        rr.end - rr.begin);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace gaia::dist
