#include "dist/dist_trainer.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <optional>

#include "dist/wire.h"
#include "nn/module.h"
#include "obs/obs.h"
#include "serving/checkpoint_store.h"
#include "util/fault_injector.h"
#include "util/stopwatch.h"
#include "util/subprocess.h"

namespace gaia::dist {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t).count();
}

/// gaia_dist_* instruments. Unconditional (like the gaia_robust_* family):
/// supervision events must be countable even at GAIA_OBS=off.
struct DistMetrics {
  obs::Counter& workers_spawned;
  obs::Counter& workers_lost;
  obs::Counter& spawn_retries;
  obs::Counter& heartbeats;
  obs::Counter& heartbeat_timeouts;
  obs::Counter& ring_frames;
  obs::Counter& ring_bytes;
  obs::Counter& rounds;
  obs::Counter& rounds_skipped;
  obs::Counter& metric_frames;
  obs::Gauge& live_workers;

  static DistMetrics& Get() {
    static DistMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      return new DistMetrics{
          r.GetCounter("gaia_dist_workers_spawned_total",
                       "Training worker processes spawned"),
          r.GetCounter("gaia_dist_workers_lost_total",
                       "Training workers lost to death or heartbeat timeout"),
          r.GetCounter("gaia_dist_spawn_retries_total",
                       "Worker spawn attempts beyond the first"),
          r.GetCounter("gaia_dist_heartbeats_total",
                       "Worker heartbeat frames received"),
          r.GetCounter("gaia_dist_heartbeat_timeouts_total",
                       "Workers SIGKILLed for missing heartbeats"),
          r.GetCounter("gaia_dist_ring_frames_total",
                       "Ring all-reduce frames routed between workers"),
          r.GetCounter("gaia_dist_ring_bytes_total",
                       "Ring all-reduce payload bytes routed"),
          r.GetCounter("gaia_dist_rounds_total",
                       "Gradient-exchange rounds resolved"),
          r.GetCounter("gaia_dist_rounds_skipped_total",
                       "Rounds resolved as skip (fault or worker loss)"),
          r.GetCounter("gaia_dist_metric_frames_total",
                       "Worker metrics-delta frames merged by the supervisor"),
          r.GetGauge("gaia_dist_live_workers",
                     "Currently live training workers"),
      };
    }();
    return *m;
  }
};

std::string HexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Supervisor-side state for one worker process.
struct WorkerProc {
  int rank = -1;
  pid_t pid = -1;
  int read_fd = -1;   ///< worker → supervisor
  int write_fd = -1;  ///< supervisor → worker
  FrameBuffer inbox;
  std::deque<std::vector<uint8_t>> outbox;
  size_t outbox_offset = 0;  ///< bytes of outbox.front() already written
  bool alive = false;
  bool hello = false;
  bool done = false;
  DoneStats stats;
  Clock::time_point last_heard;
  int64_t report_epoch = -1;
  EpochReport report;
};

class Supervisor {
 public:
  explicit Supervisor(const DistTrainerConfig& config) : config_(config) {}

  Result<DistTrainResult> Run() {
    GAIA_OBS_SPAN("dist.fit");
    // A worker can die while the supervisor is mid-write to it; EPIPE must
    // surface as an errno, not a process-killing signal.
    ::signal(SIGPIPE, SIG_IGN);
    Stopwatch watch;
    auto result = RunPhases();
    ShutdownAll();
    if (result.ok()) result.value().seconds = watch.ElapsedSeconds();
    return result;
  }

 private:
  Result<DistTrainResult> RunPhases() {
    if (config_.num_workers < 1) {
      return Status::InvalidArgument("num_workers must be >= 1");
    }
    Status spawned = SpawnAll();
    if (!spawned.ok()) return spawned;
    Status started = AwaitHellosAndStart();
    if (!started.ok()) return started;
    Status trained = EventLoop();
    if (!trained.ok()) return trained;
    auto checkpoint = SaveCheckpoint();
    if (!checkpoint.ok()) return checkpoint.status();
    result_.checkpoint_path = std::move(checkpoint).value();

    const WorkerProc* source = nullptr;
    for (const WorkerProc& w : workers_) {
      if (w.alive && w.done) {
        source = &w;
        break;
      }
    }
    if (source != nullptr) {
      result_.epochs_run = source->stats.epochs_run;
      result_.best_val_loss = source->stats.best_val_loss;
      result_.final_train_loss = source->stats.final_train_loss;
    }
    result_.degraded = result_.workers_lost > 0 ||
                       result_.workers_started < config_.num_workers;
    return result_;
  }

  Status SpawnAll() {
    GAIA_OBS_SPAN("dist.spawn");
    workers_.resize(static_cast<size_t>(config_.num_workers));
    const std::string exec_path = config_.worker_binary.empty()
                                      ? util::SelfExePath("gaia_cli")
                                      : config_.worker_binary;
    for (int rank = 0; rank < config_.num_workers; ++rank) {
      WorkerProc& w = workers_[static_cast<size_t>(rank)];
      w.rank = rank;
      Status status = SpawnOne(&w, exec_path);
      if (!status.ok()) {
        std::cerr << "[dist] worker " << rank
                  << " failed to spawn: " << status.ToString() << "\n";
        if (LiveCount() + (config_.num_workers - rank - 1) <
            config_.min_workers) {
          return Status::Unavailable(
              "too few workers spawned: " + status.ToString());
        }
        continue;  // degrade: train on the workers that did come up
      }
      ++result_.workers_started;
      DistMetrics::Get().workers_spawned.Increment();
    }
    if (LiveCount() < config_.min_workers) {
      return Status::Unavailable("too few workers spawned");
    }
    DistMetrics::Get().live_workers.Set(static_cast<double>(LiveCount()));
    return Status::OK();
  }

  Status SpawnOne(WorkerProc* w, const std::string& exec_path) {
    auto to_worker = util::CreatePipe();
    if (!to_worker.ok()) return to_worker.status();
    auto to_parent = util::CreatePipe();
    if (!to_parent.ok()) {
      util::Pipe p = to_worker.value();
      util::CloseFd(&p.read_fd);
      util::CloseFd(&p.write_fd);
      return to_parent.status();
    }
    util::Pipe down = to_worker.value();  // supervisor writes, worker reads
    util::Pipe up = to_parent.value();    // worker writes, supervisor reads

    util::SpawnSpec spec;
    spec.argv = WorkerArgvFor(w->rank, down.read_fd, up.write_fd, exec_path);
    spec.keep_fds = {down.read_fd, up.write_fd};

    util::FaultInjector& faults = util::FaultInjector::Global();
    util::RetryStats stats;
    auto spawned = util::RetryResult<pid_t>(
        config_.spawn_retry,
        [&]() -> Result<pid_t> {
          // dist.worker_spawn models fork/exec infrastructure failure;
          // transient kinds ride the spawn retry ladder.
          if (auto fault = faults.Sample("dist.worker_spawn")) {
            return util::FaultStatus(*fault, "dist.worker_spawn");
          }
          return util::SpawnProcess(spec);
        },
        &stats);
    if (stats.attempts > 1) {
      result_.spawn_retries += stats.attempts - 1;
      DistMetrics::Get().spawn_retries.Increment(
          static_cast<uint64_t>(stats.attempts - 1));
    }
    // The child's ends belong to the child now (or to nobody, on failure).
    util::CloseFd(&down.read_fd);
    util::CloseFd(&up.write_fd);
    if (!spawned.ok()) {
      util::CloseFd(&down.write_fd);
      util::CloseFd(&up.read_fd);
      return spawned.status();
    }
    w->pid = spawned.value();
    w->write_fd = down.write_fd;
    w->read_fd = up.read_fd;
    w->alive = true;
    w->last_heard = Clock::now();
    Status nb = util::SetNonBlocking(w->read_fd, true);
    if (nb.ok()) nb = util::SetNonBlocking(w->write_fd, true);
    if (!nb.ok()) {
      LoseWorker(w, "fd setup failed");
      return nb;
    }
    return Status::OK();
  }

  std::vector<std::string> WorkerArgvFor(int rank, int read_fd, int write_fd,
                                         const std::string& exec_path) {
    DistTrainerConfig cfg = config_;
    cfg.worker_binary = exec_path;
    return WorkerArgv(cfg, rank, read_fd, write_fd);
  }

  Status AwaitHellosAndStart() {
    const Clock::time_point begin = Clock::now();
    for (;;) {
      PumpOnce(20);
      ReapDead();
      bool all = true;
      for (const WorkerProc& w : workers_) {
        if (w.alive && !w.hello) all = false;
      }
      if (all) break;
      if (MsSince(begin) > config_.spawn_timeout_ms) {
        for (WorkerProc& w : workers_) {
          if (w.alive && !w.hello) LoseWorker(&w, "no hello before deadline");
        }
        break;
      }
    }
    if (LiveCount() < config_.min_workers) {
      return Status::Unavailable("too few workers reached hello");
    }
    Frame start;
    start.type = FrameType::kStart;
    start.payload = EncodeRanks(LiveRanks());
    Broadcast(start);
    return Status::OK();
  }

  Status EventLoop() {
    for (;;) {
      bool all_done = true;
      for (const WorkerProc& w : workers_) {
        if (w.alive && !w.done) all_done = false;
      }
      if (all_done) break;
      if (LiveCount() < config_.min_workers || LiveCount() == 0) {
        return Status::Unavailable(
            "worker pool fell below min_workers during training");
      }
      PumpOnce(20);
      ReapDead();
      CheckHeartbeats();
      MaybeResolveRound();
    }
    if (LiveCount() == 0) {
      return Status::Unavailable("all workers lost");
    }
    return Status::OK();
  }

  Result<std::string> SaveCheckpoint() {
    GAIA_OBS_SPAN("dist.save");
    Status last = Status::Unavailable("no live worker to save from");
    for (WorkerProc& w : workers_) {
      if (!w.alive || !w.done) continue;
      save_reply_.reset();
      Frame save;
      save.type = FrameType::kSave;
      save.payload.assign(config_.checkpoint_path.begin(),
                          config_.checkpoint_path.end());
      QueueFrame(&w, save);
      const Clock::time_point begin = Clock::now();
      while (!save_reply_.has_value() && w.alive &&
             MsSince(begin) <= config_.save_timeout_ms) {
        PumpOnce(20);
        ReapDead();
      }
      if (!save_reply_.has_value()) {
        last = Status::Unavailable("worker " + std::to_string(w.rank) +
                                   " did not acknowledge save");
        if (w.alive) LoseWorker(&w, "save timeout");
        continue;
      }
      if (save_reply_->arg0 != 1) {
        last = Status::IoError(
            "worker " + std::to_string(w.rank) + " save failed: " +
            std::string(save_reply_->payload.begin(),
                        save_reply_->payload.end()));
        continue;
      }
      // Trust nothing until the bytes on disk CRC-verify.
      Status verified = nn::Module::VerifyCheckpoint(config_.checkpoint_path);
      if (!verified.ok()) {
        last = verified;
        continue;
      }
      if (!config_.store_dir.empty()) {
        serving::CheckpointStoreConfig store_cfg;
        store_cfg.dir = config_.store_dir;
        serving::CheckpointStore store(store_cfg);
        Status adopted = store.Adopt(config_.checkpoint_path);
        if (!adopted.ok()) {
          last = adopted;
          continue;
        }
      }
      return config_.checkpoint_path;
    }
    return last;
  }

  // --- event plumbing ---------------------------------------------------

  void PumpOnce(int timeout_ms) {
    std::vector<struct pollfd> fds;
    std::vector<WorkerProc*> owners;
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      struct pollfd rd;
      rd.fd = w.read_fd;
      rd.events = POLLIN;
      rd.revents = 0;
      fds.push_back(rd);
      owners.push_back(&w);
      if (!w.outbox.empty()) {
        struct pollfd wr;
        wr.fd = w.write_fd;
        wr.events = POLLOUT;
        wr.revents = 0;
        fds.push_back(wr);
        owners.push_back(&w);
      }
    }
    if (fds.empty()) return;
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready <= 0) return;
    for (size_t i = 0; i < fds.size(); ++i) {
      WorkerProc* w = owners[i];
      if (!w->alive || fds[i].revents == 0) continue;
      if (fds[i].events == POLLIN) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          DrainReads(w);
        }
      } else if ((fds[i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        FlushOutbox(w);
      }
    }
  }

  void DrainReads(WorkerProc* w) {
    uint8_t buf[65536];
    for (;;) {
      const ssize_t got = ::read(w->read_fd, buf, sizeof(buf));
      if (got < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        LoseWorker(w, "read error");
        return;
      }
      if (got == 0) {
        // EOF: drain what we have, then the reaper classifies the death.
        DispatchFrames(w);
        LoseWorker(w, "pipe closed");
        return;
      }
      w->inbox.Append(buf, static_cast<size_t>(got));
      if (got < static_cast<ssize_t>(sizeof(buf))) break;
    }
    DispatchFrames(w);
  }

  void DispatchFrames(WorkerProc* w) {
    for (;;) {
      auto next = w->inbox.Next();
      if (!next.ok()) {
        LoseWorker(w, "corrupt frame stream");
        return;
      }
      if (!next.value().has_value()) return;
      HandleFrame(w, std::move(*next.value()));
      if (!w->alive) return;
    }
  }

  void HandleFrame(WorkerProc* w, Frame&& f) {
    w->last_heard = Clock::now();
    switch (f.type) {
      case FrameType::kHello:
        w->hello = true;
        break;
      case FrameType::kHeartbeat:
        DistMetrics::Get().heartbeats.Increment();
        break;
      case FrameType::kRingData: {
        WorkerProc* dst = ByRank(static_cast<int>(f.arg1));
        DistMetrics::Get().ring_frames.Increment();
        DistMetrics::Get().ring_bytes.Increment(
            static_cast<uint64_t>(f.payload.size()));
        // Hops to a dead worker vanish; the sender's round resolves as a
        // skip through the report/outcome path.
        if (dst != nullptr && dst->alive) QueueFrame(dst, f);
        break;
      }
      case FrameType::kEpochReport: {
        if (f.epoch <= last_resolved_) break;  // straggler: already settled
        auto body = DecodeStruct<EpochReport>(f.payload);
        if (!body.ok()) {
          LoseWorker(w, "bad epoch report");
          break;
        }
        w->report = body.value();
        w->report_epoch = f.epoch;
        break;
      }
      case FrameType::kDone: {
        auto body = DecodeStruct<DoneStats>(f.payload);
        if (body.ok()) w->stats = body.value();
        w->done = true;
        break;
      }
      case FrameType::kSaveDone:
        save_reply_ = std::move(f);
        break;
      case FrameType::kMetrics: {
        // Cross-process aggregation: fold the worker's counter deltas into
        // supervisor-side gaia_dist_worker_* counters, so one /metrics
        // scrape of this process covers the whole training fleet. A corrupt
        // payload is dropped — telemetry is never worth losing a worker.
        auto deltas = DecodeCounterDeltas(f.payload);
        if (!deltas.ok()) break;
        DistMetrics::Get().metric_frames.Increment();
        obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
        for (const auto& [name, delta] : deltas.value()) {
          // gaia_serve_requests_total → gaia_dist_worker_serve_requests_total
          const std::string merged =
              "gaia_dist_worker_" +
              (name.rfind("gaia_", 0) == 0 ? name.substr(5) : name);
          registry
              .GetCounter(merged,
                          "Summed across training workers (shipped at epoch "
                          "boundaries over the wire protocol)")
              .Increment(delta);
        }
        break;
      }
      default:
        break;  // workers never send kStart/kOutcome/kSave/kShutdown
    }
  }

  void QueueFrame(WorkerProc* w, const Frame& f) {
    w->outbox.push_back(SerializeFrame(f));
    FlushOutbox(w);
  }

  void FlushOutbox(WorkerProc* w) {
    while (!w->outbox.empty()) {
      const std::vector<uint8_t>& front = w->outbox.front();
      const size_t remaining = front.size() - w->outbox_offset;
      const ssize_t wrote =
          ::write(w->write_fd, front.data() + w->outbox_offset, remaining);
      if (wrote < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        LoseWorker(w, "write error");
        return;
      }
      w->outbox_offset += static_cast<size_t>(wrote);
      if (w->outbox_offset == front.size()) {
        w->outbox.pop_front();
        w->outbox_offset = 0;
      }
    }
  }

  void Broadcast(const Frame& f) {
    for (WorkerProc& w : workers_) {
      if (w.alive) QueueFrame(&w, f);
    }
  }

  void LoseWorker(WorkerProc* w, const char* why) {
    if (!w->alive) return;
    w->alive = false;
    util::CloseFd(&w->read_fd);
    util::CloseFd(&w->write_fd);
    w->outbox.clear();
    w->outbox_offset = 0;
    if (w->pid > 0) {
      // Collect the corpse (SIGKILL first if it is somehow still running)
      // so no zombie outlives the supervisor.
      util::ReapWithTimeout(w->pid, 1000.0, /*kill_on_timeout=*/true);
    }
    ++result_.workers_lost;
    DistMetrics::Get().workers_lost.Increment();
    DistMetrics::Get().live_workers.Set(static_cast<double>(LiveCount()));
    std::cerr << "[dist] worker " << w->rank << " (pid " << w->pid
              << ") lost: " << why << "; continuing with " << LiveCount()
              << " workers\n";
    death_pending_ = true;
    // Asynchronous death notice (epoch -1): unblocks peers waiting on ring
    // hops from the dead worker; membership itself only changes on the
    // next round outcome.
    Frame notice;
    notice.type = FrameType::kOutcome;
    notice.epoch = -1;
    notice.arg0 = static_cast<uint32_t>(OutcomeAction::kSkip);
    notice.payload = EncodeRanks(LiveRanks());
    Broadcast(notice);
  }

  void ReapDead() {
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      util::ExitInfo info = util::TryReap(w.pid);
      if (info.exited) {
        w.pid = -1;  // already collected
        LoseWorker(&w, info.signaled ? "killed by signal" : "exited");
      }
    }
  }

  void CheckHeartbeats() {
    for (WorkerProc& w : workers_) {
      // Done workers stop their heartbeat thread by design; they are
      // supervised through the save/shutdown handshake instead.
      if (!w.alive || w.done) continue;
      if (MsSince(w.last_heard) > config_.heartbeat_timeout_ms) {
        DistMetrics::Get().heartbeat_timeouts.Increment();
        if (w.pid > 0) ::kill(w.pid, SIGKILL);
        LoseWorker(&w, "heartbeat timeout");
      }
    }
  }

  void MaybeResolveRound() {
    const int64_t epoch = last_resolved_ + 1;
    bool any_report = false;
    bool any_fail = false;
    bool all_reported = true;
    for (const WorkerProc& w : workers_) {
      if (!w.alive || w.done) continue;
      if (w.report_epoch == epoch) {
        any_report = true;
        if (w.report.ok == 0) any_fail = true;
      } else {
        all_reported = false;
      }
    }
    if (!any_report) return;
    if (any_fail || death_pending_) {
      Resolve(epoch, OutcomeAction::kSkip);
    } else if (all_reported) {
      Resolve(epoch, OutcomeAction::kStep);
    }
  }

  void Resolve(int64_t epoch, OutcomeAction action) {
    last_resolved_ = epoch;
    death_pending_ = false;
    DistMetrics::Get().rounds.Increment();
    if (action == OutcomeAction::kSkip) {
      DistMetrics::Get().rounds_skipped.Increment();
      ++result_.skipped_steps;
    }
    Frame outcome;
    outcome.type = FrameType::kOutcome;
    outcome.epoch = epoch;
    outcome.arg0 = static_cast<uint32_t>(action);
    outcome.payload = EncodeRanks(LiveRanks());
    Broadcast(outcome);
    if (config_.on_round) config_.on_round(epoch, LivePids());
  }

  void ShutdownAll() {
    Frame bye;
    bye.type = FrameType::kShutdown;
    Broadcast(bye);
    // Give the farewell a moment to flush, then make exit unconditional.
    const Clock::time_point begin = Clock::now();
    while (MsSince(begin) < 500.0) {
      bool pending = false;
      for (const WorkerProc& w : workers_) {
        if (w.alive && !w.outbox.empty()) pending = true;
      }
      if (!pending) break;
      PumpOnce(10);
    }
    for (WorkerProc& w : workers_) {
      if (!w.alive) continue;
      w.alive = false;
      util::CloseFd(&w.read_fd);
      util::CloseFd(&w.write_fd);
      if (w.pid > 0) {
        util::ReapWithTimeout(w.pid, 2000.0, /*kill_on_timeout=*/true);
      }
    }
    DistMetrics::Get().live_workers.Set(0.0);
  }

  int LiveCount() const {
    int n = 0;
    for (const WorkerProc& w : workers_) {
      if (w.alive) ++n;
    }
    return n;
  }

  std::vector<int> LiveRanks() const {
    std::vector<int> ranks;
    for (const WorkerProc& w : workers_) {
      if (w.alive) ranks.push_back(w.rank);
    }
    return ranks;
  }

  std::vector<pid_t> LivePids() const {
    std::vector<pid_t> pids;
    for (const WorkerProc& w : workers_) {
      if (w.alive) pids.push_back(w.pid);
    }
    return pids;
  }

  WorkerProc* ByRank(int rank) {
    for (WorkerProc& w : workers_) {
      if (w.rank == rank) return &w;
    }
    return nullptr;
  }

  DistTrainerConfig config_;
  std::vector<WorkerProc> workers_;
  DistTrainResult result_;
  int64_t last_resolved_ = -1;
  bool death_pending_ = false;
  std::optional<Frame> save_reply_;
};

}  // namespace

std::vector<std::string> WorkerArgv(const DistTrainerConfig& config, int rank,
                                    int read_fd, int write_fd) {
  const core::TrainConfig& t = config.train;
  return {
      config.worker_binary,
      "train-worker",
      "--rank", std::to_string(rank),
      "--world", std::to_string(config.num_workers),
      "--read-fd", std::to_string(read_fd),
      "--write-fd", std::to_string(write_fd),
      "--market", config.market_dir,
      "--channels", std::to_string(config.channels),
      "--layers", std::to_string(config.num_layers),
      "--model-seed", std::to_string(config.model_seed),
      "--epochs", std::to_string(t.max_epochs),
      "--lr", HexDouble(static_cast<double>(t.learning_rate)),
      "--grad-clip", HexDouble(static_cast<double>(t.grad_clip)),
      "--patience", std::to_string(t.patience),
      "--eval-every", std::to_string(t.eval_every),
      "--batch-nodes", std::to_string(t.batch_nodes),
      "--cosine", t.cosine_lr_decay ? "1" : "0",
      "--seed", std::to_string(t.seed),
      "--heartbeat-ms", HexDouble(config.heartbeat_ms),
  };
}

Result<DistTrainResult> DistTrainer::Fit() {
  Supervisor supervisor(config_);
  return supervisor.Run();
}

}  // namespace gaia::dist
