#include "dist/wire.h"

#include <cstring>

#include "util/subprocess.h"

namespace gaia::dist {

namespace {

/// On-the-wire header layout. Packed into a flat byte array by hand so the
/// struct padding of the host compiler never leaks into the stream.
constexpr size_t kHeaderBytes = 40;

void PackU32(uint8_t* out, uint32_t v) { std::memcpy(out, &v, sizeof(v)); }
void PackI64(uint8_t* out, int64_t v) { std::memcpy(out, &v, sizeof(v)); }
void PackU64(uint8_t* out, uint64_t v) { std::memcpy(out, &v, sizeof(v)); }

uint32_t UnpackU32(const uint8_t* in) {
  uint32_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

int64_t UnpackI64(const uint8_t* in) {
  int64_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

uint64_t UnpackU64(const uint8_t* in) {
  uint64_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

void PackHeader(const Frame& frame, uint8_t* out) {
  PackU32(out + 0, kFrameMagic);
  PackU32(out + 4, static_cast<uint32_t>(frame.type));
  PackI64(out + 8, frame.epoch);
  PackU32(out + 16, frame.arg0);
  PackU32(out + 20, frame.arg1);
  PackU32(out + 24, frame.arg2);
  PackU32(out + 28, frame.arg3);
  PackU64(out + 32, static_cast<uint64_t>(frame.payload.size()));
}

Status UnpackHeader(const uint8_t* in, Frame* frame, uint64_t* payload_bytes) {
  const uint32_t magic = UnpackU32(in + 0);
  if (magic != kFrameMagic) {
    return Status::DataLoss("frame header: bad magic " + std::to_string(magic));
  }
  const uint32_t type = UnpackU32(in + 4);
  if (type < static_cast<uint32_t>(FrameType::kHello) ||
      type > static_cast<uint32_t>(FrameType::kMetrics)) {
    return Status::DataLoss("frame header: unknown type " +
                            std::to_string(type));
  }
  const uint64_t bytes = UnpackU64(in + 32);
  if (bytes > kMaxPayloadBytes) {
    return Status::DataLoss("frame header: payload too large (" +
                            std::to_string(bytes) + " bytes)");
  }
  frame->type = static_cast<FrameType>(type);
  frame->epoch = UnpackI64(in + 8);
  frame->arg0 = UnpackU32(in + 16);
  frame->arg1 = UnpackU32(in + 20);
  frame->arg2 = UnpackU32(in + 24);
  frame->arg3 = UnpackU32(in + 28);
  *payload_bytes = bytes;
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> SerializeFrame(const Frame& frame) {
  std::vector<uint8_t> buf(kHeaderBytes + frame.payload.size());
  PackHeader(frame, buf.data());
  if (!frame.payload.empty()) {
    std::memcpy(buf.data() + kHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return buf;
}

Status WriteFrame(int fd, const Frame& frame) {
  // One contiguous write: header + payload. A single buffer keeps frames
  // under PIPE_BUF atomic for the small control messages, and the blocking
  // WriteFull handles the large kRingData payloads.
  const std::vector<uint8_t> buf = SerializeFrame(frame);
  return util::WriteFull(fd, buf.data(), buf.size());
}

Result<Frame> ReadFrame(int fd, const util::CancelToken* cancel) {
  uint8_t header[kHeaderBytes];
  Status read = util::ReadFull(fd, header, sizeof(header), cancel);
  if (!read.ok()) return read;
  Frame frame;
  uint64_t payload_bytes = 0;
  Status parsed = UnpackHeader(header, &frame, &payload_bytes);
  if (!parsed.ok()) return parsed;
  frame.payload.resize(payload_bytes);
  if (payload_bytes > 0) {
    read = util::ReadFull(fd, frame.payload.data(), payload_bytes, cancel);
    if (!read.ok()) return read;
  }
  return frame;
}

void FrameBuffer::Append(const uint8_t* data, size_t n) {
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state appends stay amortized O(n).
  if (consumed_ > 0 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Result<std::optional<Frame>> FrameBuffer::Next() {
  const size_t available = buffer_.size() - consumed_;
  if (available < kHeaderBytes) return std::optional<Frame>();
  Frame frame;
  uint64_t payload_bytes = 0;
  Status parsed =
      UnpackHeader(buffer_.data() + consumed_, &frame, &payload_bytes);
  if (!parsed.ok()) return parsed;
  if (available < kHeaderBytes + payload_bytes) return std::optional<Frame>();
  frame.payload.assign(
      buffer_.data() + consumed_ + kHeaderBytes,
      buffer_.data() + consumed_ + kHeaderBytes + payload_bytes);
  consumed_ += kHeaderBytes + payload_bytes;
  return std::optional<Frame>(std::move(frame));
}

std::vector<uint8_t> EncodeRanks(const std::vector<int>& ranks) {
  std::vector<uint8_t> out(ranks.size() * sizeof(uint32_t));
  for (size_t i = 0; i < ranks.size(); ++i) {
    PackU32(out.data() + i * sizeof(uint32_t),
            static_cast<uint32_t>(ranks[i]));
  }
  return out;
}

Result<std::vector<int>> DecodeRanks(const std::vector<uint8_t>& payload) {
  if (payload.size() % sizeof(uint32_t) != 0) {
    return Status::DataLoss("rank list payload not a multiple of 4 bytes");
  }
  std::vector<int> ranks(payload.size() / sizeof(uint32_t));
  for (size_t i = 0; i < ranks.size(); ++i) {
    ranks[i] =
        static_cast<int>(UnpackU32(payload.data() + i * sizeof(uint32_t)));
  }
  return ranks;
}

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello:
      return "hello";
    case FrameType::kStart:
      return "start";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kRingData:
      return "ring_data";
    case FrameType::kEpochReport:
      return "epoch_report";
    case FrameType::kOutcome:
      return "outcome";
    case FrameType::kDone:
      return "done";
    case FrameType::kSave:
      return "save";
    case FrameType::kSaveDone:
      return "save_done";
    case FrameType::kShutdown:
      return "shutdown";
    case FrameType::kMetrics:
      return "metrics";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeCounterDeltas(
    const std::vector<std::pair<std::string, uint64_t>>& deltas) {
  size_t bytes = sizeof(uint32_t);
  for (const auto& [name, delta] : deltas) {
    (void)delta;
    bytes += sizeof(uint32_t) + name.size() + sizeof(uint64_t);
  }
  std::vector<uint8_t> out(bytes);
  uint8_t* p = out.data();
  PackU32(p, static_cast<uint32_t>(deltas.size()));
  p += sizeof(uint32_t);
  for (const auto& [name, delta] : deltas) {
    PackU32(p, static_cast<uint32_t>(name.size()));
    p += sizeof(uint32_t);
    std::memcpy(p, name.data(), name.size());
    p += name.size();
    PackU64(p, delta);
    p += sizeof(uint64_t);
  }
  return out;
}

Result<std::vector<std::pair<std::string, uint64_t>>> DecodeCounterDeltas(
    const std::vector<uint8_t>& payload) {
  constexpr size_t kMaxNameBytes = 256;
  size_t pos = 0;
  auto remaining = [&] { return payload.size() - pos; };
  if (remaining() < sizeof(uint32_t)) {
    return Status::DataLoss("counter deltas: truncated count");
  }
  const uint32_t count = UnpackU32(payload.data() + pos);
  pos += sizeof(uint32_t);
  std::vector<std::pair<std::string, uint64_t>> deltas;
  deltas.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (remaining() < sizeof(uint32_t)) {
      return Status::DataLoss("counter deltas: truncated name length");
    }
    const uint32_t name_len = UnpackU32(payload.data() + pos);
    pos += sizeof(uint32_t);
    if (name_len == 0 || name_len > kMaxNameBytes) {
      return Status::DataLoss("counter deltas: bad name length " +
                              std::to_string(name_len));
    }
    if (remaining() < name_len + sizeof(uint64_t)) {
      return Status::DataLoss("counter deltas: truncated entry");
    }
    std::string name(reinterpret_cast<const char*>(payload.data() + pos),
                     name_len);
    pos += name_len;
    const uint64_t delta = UnpackU64(payload.data() + pos);
    pos += sizeof(uint64_t);
    deltas.emplace_back(std::move(name), delta);
  }
  if (pos != payload.size()) {
    return Status::DataLoss("counter deltas: trailing bytes");
  }
  return deltas;
}

}  // namespace gaia::dist
