#ifndef GAIA_DIST_RING_H_
#define GAIA_DIST_RING_H_

#include <cstdint>
#include <functional>

#include "util/status.h"

namespace gaia::dist {

/// \brief Deterministic ring all-reduce (sum) with a fixed, rank-ordered
/// reduction sequence.
///
/// The flat gradient vector is split into `world` contiguous blocks. The
/// classic two-phase schedule runs:
///
///   reduce-scatter, steps s = 0..world-2:
///     position p sends block (p - s) mod M to its successor, receives
///     block (p - s - 1) mod M from its predecessor and accumulates it
///     into the local buffer. After the phase, position p holds the fully
///     reduced block (p + 1) mod M.
///   all-gather, steps s = 0..world-2:
///     position p sends block (p + 1 - s) mod M, receives block
///     (p - s) mod M and overwrites the local copy.
///
/// Block j is therefore accumulated along the ring in one fixed order —
/// ((g_j + g_{j+1}) + g_{j+2}) + ... — so at a fixed world size the result
/// is bitwise identical across reruns and across interleavings of the
/// underlying transport. (IEEE-754 addition is commutative bitwise; only
/// the association order matters, and the schedule pins it.)
///
/// Transport is abstracted as two callbacks so the same schedule runs over
/// supervisor-routed pipes in production and in-memory queues in tests.

struct RingTransport {
  /// Sends `count` floats of block `block` for exchange step `step` to the
  /// ring successor. Must not return until the payload is handed off.
  std::function<Status(int step, int block, const float* data, int64_t count)>
      send;
  /// Receives the matching payload for (`step`, `block`) from the ring
  /// predecessor into `data`. Blocking, bounded by the caller's deadline.
  std::function<Status(int step, int block, float* data, int64_t count)> recv;
};

/// Half-open element range [begin, end) of block `block` when a vector of
/// `len` elements is split into `world` contiguous blocks. Remainders are
/// spread over the leading blocks; every element lands in exactly one block.
struct BlockRange {
  int64_t begin = 0;
  int64_t end = 0;
};
BlockRange RingBlock(int64_t len, int world, int block);

/// Runs the schedule above for the worker at ring position `pos` (0-based
/// among `world` live participants) over `data[0..len)`. On success every
/// participant holds the identical bitwise sum. Any transport error aborts
/// immediately with that status; `data` is then partially reduced garbage
/// and the step must be skipped.
Status RingAllReduceSum(int pos, int world, float* data, int64_t len,
                        const RingTransport& transport);

}  // namespace gaia::dist

#endif  // GAIA_DIST_RING_H_
