#ifndef GAIA_DIST_WIRE_H_
#define GAIA_DIST_WIRE_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gaia::util {
class CancelToken;
}

namespace gaia::dist {

/// \brief Framed binary protocol between the DistTrainer supervisor and its
/// worker processes (docs/ARCHITECTURE.md, "Multi-process training tier").
///
/// Every message is one frame: a fixed 40-byte header followed by
/// `payload_bytes` of payload. Both directions share the format; the
/// supervisor also *routes* kRingData frames between workers (the workers'
/// only channel is their supervisor pipe pair), which is what turns N pipe
/// pairs into a logical all-reduce ring. Single machine, single
/// architecture: multi-byte fields are host-endian memcpys.

enum class FrameType : uint32_t {
  kHello = 1,    ///< worker → sup: dataset+model ready (arg0 = rank)
  kStart,        ///< sup → worker: begin training (payload = live ranks)
  kHeartbeat,    ///< worker → sup: liveness beacon (arg0 = rank)
  kRingData,     ///< ring hop; args = src, dst, step, block; payload floats
  kEpochReport,  ///< worker → sup: epoch finished (payload EpochReport)
  kOutcome,      ///< sup → worker: step/skip verdict + live ranks
  kDone,         ///< worker → sup: training loop ended (payload DoneStats)
  kSave,         ///< sup → worker: write the checkpoint (payload = path)
  kSaveDone,     ///< worker → sup: save verdict (arg0 = ok, payload = error)
  kShutdown,     ///< sup → worker: exit cleanly
  kMetrics,      ///< worker → sup: MetricsRegistry counter deltas since the
                 ///< last report (payload = EncodeCounterDeltas); merged
                 ///< into supervisor-side gaia_dist_worker_* metrics
};

/// kOutcome arg0 values.
enum class OutcomeAction : uint32_t {
  kStep = 0,  ///< every live worker exchanged cleanly: apply the step
  kSkip = 1,  ///< a fault or death broke the round: skip the step
};

constexpr uint32_t kFrameMagic = 0x47445731;  // "GDW1"

/// Hard sanity cap on a single frame's payload; a gradient exchange for
/// this model family is a few MB at most, so anything near the cap means a
/// corrupt or misframed stream.
constexpr uint64_t kMaxPayloadBytes = 1ull << 30;

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  int64_t epoch = -1;
  uint32_t arg0 = 0;
  uint32_t arg1 = 0;
  uint32_t arg2 = 0;
  uint32_t arg3 = 0;
  std::vector<uint8_t> payload;
};

/// kEpochReport payload.
struct EpochReport {
  uint32_t ok = 0;          ///< 1 = gradient exchange succeeded
  uint32_t shard_size = 0;  ///< nodes this worker trained on
  float shard_loss = 0.0f;  ///< training loss over the worker's shard
};

/// kDone payload.
struct DoneStats {
  int32_t epochs_run = 0;
  int32_t skipped_steps = 0;
  double best_val_loss = 0.0;
  double final_train_loss = 0.0;
};

/// Header + payload as one contiguous byte buffer (the supervisor queues
/// these on its non-blocking outboxes).
std::vector<uint8_t> SerializeFrame(const Frame& frame);

/// Serializes `frame` and writes it with util::WriteFull (blocking).
Status WriteFrame(int fd, const Frame& frame);

/// Reads one frame with util::ReadFull; `cancel` bounds the wait. Rejects
/// bad magic / oversized payloads as kDataLoss.
Result<Frame> ReadFrame(int fd, const util::CancelToken* cancel);

/// \brief Incremental frame assembly for the supervisor's non-blocking
/// reads: append whatever bytes poll() produced, pop complete frames.
class FrameBuffer {
 public:
  void Append(const uint8_t* data, size_t n);

  /// Next complete frame if one is buffered; std::nullopt when more bytes
  /// are needed; kDataLoss on a corrupt header (the connection is then
  /// unusable and the worker should be treated as lost).
  Result<std::optional<Frame>> Next();

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;
};

/// Typed payload helpers. Decode errors are kDataLoss.
std::vector<uint8_t> EncodeRanks(const std::vector<int>& ranks);
Result<std::vector<int>> DecodeRanks(const std::vector<uint8_t>& payload);

/// kMetrics payload: a list of (counter name, delta) pairs. Layout: u32
/// count, then per entry u32 name length + name bytes + u64 delta. Names
/// are capped at 256 bytes on decode (a longer name means a corrupt frame).
std::vector<uint8_t> EncodeCounterDeltas(
    const std::vector<std::pair<std::string, uint64_t>>& deltas);
Result<std::vector<std::pair<std::string, uint64_t>>> DecodeCounterDeltas(
    const std::vector<uint8_t>& payload);

template <typename T>
std::vector<uint8_t> EncodeStruct(const T& value) {
  std::vector<uint8_t> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}

template <typename T>
Result<T> DecodeStruct(const std::vector<uint8_t>& payload) {
  if (payload.size() != sizeof(T)) {
    return Status::DataLoss("frame payload size mismatch: got " +
                            std::to_string(payload.size()) + ", want " +
                            std::to_string(sizeof(T)));
  }
  T value;
  std::memcpy(&value, payload.data(), sizeof(T));
  return value;
}

const char* FrameTypeToString(FrameType type);

}  // namespace gaia::dist

#endif  // GAIA_DIST_WIRE_H_
