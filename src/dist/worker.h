#ifndef GAIA_DIST_WORKER_H_
#define GAIA_DIST_WORKER_H_

#include <cstdint>
#include <string>

#include "core/trainer.h"

namespace gaia::dist {

/// \brief One training worker process (the hidden `gaia_cli train-worker`
/// mode spawned by DistTrainer).
///
/// A worker is an exact serial replica of the in-process training loop: it
/// loads the same market, builds the same model, pins the thread pool to
/// the inline path, and runs core::Trainer::Fit with TrainHooks that shard
/// each epoch's batch and ring-all-reduce the gradients through the
/// supervisor-routed pipe pair. Because every numeric decision — batch
/// shuffle, shard split, reduced gradients, optimizer state, eval, early
/// stopping — is a deterministic function of state all workers share,
/// the replicas stay in bitwise lockstep without ever exchanging
/// parameters, and at world size 1 the hooks do no numeric work at all, so
/// the run is bit-for-bit the in-process Trainer.

struct WorkerOptions {
  int rank = 0;
  int world = 1;        ///< workers the supervisor intends to start
  int read_fd = -1;     ///< supervisor → worker pipe
  int write_fd = -1;    ///< worker → supervisor pipe
  std::string market_dir;
  int64_t channels = 16;
  int64_t num_layers = 2;
  uint64_t model_seed = 1;
  core::TrainConfig train;
  double heartbeat_ms = 100.0;
  /// Bound on any single blocking wait for a peer's ring payload; on expiry
  /// the exchange aborts and the epoch is reported as failed (the
  /// supervisor then resolves the round as skip).
  double recv_timeout_ms = 30000.0;
  /// Bound on waiting for the supervisor's round verdict; expiry here means
  /// the supervisor is gone and the worker exits.
  double outcome_timeout_ms = 120000.0;
};

/// Runs the worker protocol to completion. Returns a process exit code:
/// 0 after a clean kShutdown, non-zero when the supervisor vanished or the
/// dataset/model could not be built (diagnostic on stderr).
int RunTrainWorker(const WorkerOptions& options);

}  // namespace gaia::dist

#endif  // GAIA_DIST_WORKER_H_
