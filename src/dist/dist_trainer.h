#ifndef GAIA_DIST_DIST_TRAINER_H_
#define GAIA_DIST_DIST_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "core/trainer.h"
#include "util/retry.h"
#include "util/status.h"

namespace gaia::dist {

/// \brief Fault-tolerant multi-process data-parallel training supervisor.
///
/// DistTrainer spawns `num_workers` worker processes (the hidden
/// `gaia_cli train-worker` mode; each an exact serial replica of the
/// in-process Trainer), shards each epoch's batch across them, and routes
/// their deterministic ring all-reduce over per-worker pipe pairs. The
/// supervisor itself never touches gradients — it is the control plane:
///
///   heartbeat  — every worker beacons; a silent worker past
///                heartbeat_timeout_ms is SIGKILLed and reaped
///   retry      — worker spawn rides spawn_retry; a faulted gradient hop
///                (dist.allreduce_send) retries inside the worker
///   skip-step  — any failed exchange, fault, or mid-round death resolves
///                the round as "skip": every live worker skips the
///                optimizer step in lockstep (TrainResult::skipped_steps)
///   degrade    — a dead worker is dropped from the ring and training
///                continues with the survivors, down to min_workers
///
/// Membership only changes at round boundaries (carried on each kOutcome),
/// so the parameter state stays bitwise identical across all live workers,
/// and at a fixed worker count and seed the final parameters are bitwise
/// identical across reruns. The final checkpoint is written by the lowest
/// live rank and CRC-verified (and optionally adopted into a
/// serving::CheckpointStore) before the run reports success.
struct DistTrainerConfig {
  int num_workers = 2;
  /// Deaths below this leave too little compute: the run fails instead of
  /// degrading further.
  int min_workers = 1;
  std::string market_dir;
  std::string checkpoint_path;
  /// When non-empty, the verified final checkpoint is adopted into the
  /// CheckpointStore at this directory (manifest + history).
  std::string store_dir;
  /// Binary to exec for workers; empty resolves to /proc/self/exe.
  std::string worker_binary;
  core::TrainConfig train;
  int64_t channels = 16;
  int64_t num_layers = 2;
  uint64_t model_seed = 1;
  double heartbeat_ms = 100.0;
  double heartbeat_timeout_ms = 10000.0;
  /// Budget for a worker to come up (exec + market load + kHello).
  double spawn_timeout_ms = 60000.0;
  double save_timeout_ms = 60000.0;
  util::RetryPolicy spawn_retry;
  /// Test/chaos observer: called after every resolved round with the epoch
  /// and the live worker pids — a SIGKILL aimed at one of these exercises
  /// the death → skip → degrade ladder.
  std::function<void(int64_t epoch, const std::vector<pid_t>& pids)> on_round;
};

struct DistTrainResult {
  int epochs_run = 0;
  /// Rounds resolved as skip — matches every worker's own
  /// TrainResult::skipped_steps (shared CountSkippedStep bookkeeping).
  int skipped_steps = 0;
  int workers_started = 0;
  int workers_lost = 0;
  int spawn_retries = 0;
  /// True when the run finished with fewer workers than it started with.
  bool degraded = false;
  double final_train_loss = 0.0;
  double best_val_loss = 0.0;
  double seconds = 0.0;
  std::string checkpoint_path;
};

class DistTrainer {
 public:
  explicit DistTrainer(const DistTrainerConfig& config) : config_(config) {}

  /// Runs the full supervised training session. Succeeds only when a final
  /// checkpoint has been written and CRC-verified.
  Result<DistTrainResult> Fit();

 private:
  DistTrainerConfig config_;
};

/// Worker argv for rank `rank` (exposed for tests). Floats are serialized
/// as hexfloats so the worker's parsed TrainConfig is bit-exact.
std::vector<std::string> WorkerArgv(const DistTrainerConfig& config, int rank,
                                    int read_fd, int write_fd);

}  // namespace gaia::dist

#endif  // GAIA_DIST_DIST_TRAINER_H_
