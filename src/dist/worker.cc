#include "dist/worker.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/gaia_model.h"
#include "data/market_io.h"
#include "dist/ring.h"
#include "dist/wire.h"
#include "obs/obs.h"
#include "util/cancel.h"
#include "util/fault_injector.h"
#include "util/retry.h"
#include "util/subprocess.h"
#include "util/thread_pool.h"

namespace gaia::dist {

namespace {

using core::Var;

/// The worker's supervisor pipe pair. Writes are serialized (the heartbeat
/// thread and the training thread both send frames; interleaving two frames
/// byte-wise would corrupt the stream). Reads go through a persistent
/// FrameBuffer, so a read abandoned by a deadline keeps its partial bytes
/// and the next read resumes exactly where the stream left off — a timeout
/// never desyncs the framing.
class Channel {
 public:
  Channel(int read_fd, int write_fd)
      : read_fd_(read_fd), write_fd_(write_fd) {}

  Status Write(const Frame& frame) {
    std::lock_guard<std::mutex> lock(write_mu_);
    return WriteFrame(write_fd_, frame);
  }

  /// Next frame, blocking in short poll slices so `cancel` is honoured.
  Result<Frame> Read(const util::CancelToken* cancel) {
    for (;;) {
      auto buffered = rx_.Next();
      if (!buffered.ok()) return buffered.status();
      if (buffered.value().has_value()) return std::move(*buffered.value());
      if (cancel != nullptr && cancel->Cancelled()) return cancel->ToStatus();
      struct pollfd pfd;
      pfd.fd = read_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, 20);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("poll: ") + std::strerror(errno));
      }
      if (ready == 0) continue;  // slice elapsed; re-check the token
      Status fill = FillOnce();
      if (!fill.ok()) return fill;
    }
  }

  /// Next frame if one is already buffered or readable without blocking;
  /// std::nullopt when the pipe has nothing complete yet.
  Result<std::optional<Frame>> TryRead() {
    for (;;) {
      auto buffered = rx_.Next();
      if (!buffered.ok()) return buffered.status();
      if (buffered.value().has_value()) return buffered;
      struct pollfd pfd;
      pfd.fd = read_fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, 0);
      if (ready <= 0) return std::optional<Frame>();
      Status fill = FillOnce();
      if (!fill.ok()) return fill;
    }
  }

 private:
  /// One read() into the frame buffer. Pre: poll reported readability.
  Status FillOnce() {
    uint8_t buf[65536];
    const ssize_t got = ::read(read_fd_, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN) return Status::OK();
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (got == 0) return Status::Unavailable("read: peer closed the pipe");
    rx_.Append(buf, static_cast<size_t>(got));
    return Status::OK();
  }

  int read_fd_;
  int write_fd_;
  std::mutex write_mu_;
  FrameBuffer rx_;
};

/// Periodic kHeartbeat sender. Runs until stopped or the pipe dies; a dead
/// pipe just ends the beacon — the main thread notices the supervisor's
/// absence through its own reads.
class HeartbeatThread {
 public:
  HeartbeatThread(Channel* channel, int rank, double interval_ms)
      : channel_(channel), rank_(rank), interval_ms_(interval_ms) {
    thread_ = std::thread([this] { Run(); });
  }

  ~HeartbeatThread() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void Run() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait_for(lock,
                     std::chrono::duration<double, std::milli>(interval_ms_),
                     [this] { return stop_; });
        if (stop_) return;
      }
      Frame beat;
      beat.type = FrameType::kHeartbeat;
      beat.arg0 = static_cast<uint32_t>(rank_);
      if (!channel_->Write(beat).ok()) return;
    }
  }

  Channel* channel_;
  int rank_;
  double interval_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// The worker's half of the training protocol: shard/exchange hooks plus
/// the control-frame plumbing they share.
class WorkerLoop {
 public:
  WorkerLoop(const WorkerOptions& options, Channel* channel,
             core::ForecastModel* model, util::CancelToken* abort)
      : options_(options), channel_(channel), model_(model), abort_(abort) {}

  /// Live ranks as of the last applied outcome, sorted ascending.
  void SetMembership(std::vector<int> ranks) {
    std::sort(ranks.begin(), ranks.end());
    live_ = std::move(ranks);
  }

  core::TrainHooks Hooks() {
    core::TrainHooks hooks;
    hooks.shard_batch = [this](int epoch, std::vector<int32_t>* batch) {
      ShardBatch(epoch, batch);
    };
    hooks.exchange_gradients = [this](int epoch, float shard_loss,
                                      bool local_fault) {
      return ExchangeGradients(epoch, shard_loss, local_fault);
    };
    return hooks;
  }

  bool supervisor_lost() const { return supervisor_lost_; }

 private:
  void ShardBatch(int epoch, std::vector<int32_t>* batch) {
    current_epoch_ = epoch;
    batch_size_ = batch->size();
    const int world = static_cast<int>(live_.size());
    const int pos = RingPosition();
    const BlockRange range =
        RingBlock(static_cast<int64_t>(batch->size()), world, pos);
    shard_size_ = range.end - range.begin;
    if (shard_size_ == 0) {
      // Fewer batch nodes than workers: run a one-node forward so the loss
      // graph exists, but weight this shard's gradients by zero below.
      *batch = {(*batch)[0]};
    } else {
      *batch = std::vector<int32_t>(
          batch->begin() + static_cast<ptrdiff_t>(range.begin),
          batch->begin() + static_cast<ptrdiff_t>(range.end));
    }
  }

  bool ExchangeGradients(int epoch, float shard_loss, bool local_fault) {
    GAIA_OBS_SPAN("dist.allreduce");
    // Unconditional (gaia_robust_* discipline) — and it guarantees every
    // epoch produces at least one nonzero counter delta to ship, so the
    // supervisor-side gaia_dist_worker_* merge is observable even in a
    // fault-free run with GAIA_OBS off.
    obs::MetricsRegistry::Global()
        .GetCounter("gaia_epoch_exchanges_total",
                    "Training epochs this worker exchanged gradients for")
        .Increment();
    DrainControl();
    if (supervisor_lost_ || shutdown_) {
      Abort("supervisor lost");
      return false;
    }
    bool ok = !local_fault;
    // An already-stashed outcome means the supervisor resolved this round
    // without us (another worker faulted first, or a peer died) — it can
    // only be a skip, so don't bother exchanging.
    const bool resolved_early = outcomes_.count(epoch) > 0;
    if (ok && !resolved_early && !pending_live_.has_value() &&
        live_.size() > 1) {
      ok = RunRing(epoch);
    } else if (resolved_early || pending_live_.has_value()) {
      ok = false;
    }
    // world size 1 with no fault: ok stays true and no numeric work was
    // done — the N=1 bitwise-equality contract with the in-process Trainer.

    Frame report;
    report.type = FrameType::kEpochReport;
    report.epoch = epoch;
    report.arg0 = static_cast<uint32_t>(options_.rank);
    EpochReport body;
    body.ok = ok ? 1 : 0;
    body.shard_size = static_cast<uint32_t>(shard_size_);
    body.shard_loss = shard_loss;
    report.payload = EncodeStruct(body);
    if (!channel_->Write(report).ok()) {
      Abort("supervisor lost");
      return false;
    }
    ShipMetricsDeltas(epoch);

    std::optional<Frame> outcome = WaitOutcome(epoch);
    if (!outcome.has_value()) {
      Abort(shutdown_ ? "shutdown" : "supervisor lost");
      return false;
    }
    auto ranks = DecodeRanks(outcome->payload);
    if (ranks.ok()) {
      SetMembership(std::move(ranks).value());
      if (pending_live_.has_value() && *pending_live_ == live_) {
        pending_live_.reset();
      }
    }
    return static_cast<OutcomeAction>(outcome->arg0) == OutcomeAction::kStep;
  }

  /// Flatten → scale by shard weight → ring all-reduce → unflatten. False
  /// on any transport/fault error (the step will be skipped).
  bool RunRing(int epoch) {
    std::vector<Var> params = model_->Parameters();
    int64_t total = 0;
    for (const Var& p : params) {
      if (!p->grad.empty()) total += p->grad.size();
    }
    std::vector<float> flat(static_cast<size_t>(total));
    int64_t offset = 0;
    for (const Var& p : params) {
      if (p->grad.empty()) continue;
      std::memcpy(flat.data() + offset, p->grad.data(),
                  static_cast<size_t>(p->grad.size()) * sizeof(float));
      offset += p->grad.size();
    }
    // Shard loss is a mean over the shard; the full-batch gradient is the
    // shard-size-weighted mean of shard gradients. Weights sum to 1 across
    // the ring, and an empty shard contributes exactly zero.
    const float weight = static_cast<float>(shard_size_) /
                         static_cast<float>(batch_size_);
    for (float& g : flat) g *= weight;

    const int world = static_cast<int>(live_.size());
    const int pos = RingPosition();
    const int succ = live_[static_cast<size_t>((pos + 1) % world)];
    RingTransport transport;
    transport.send = [&](int step, int block, const float* data,
                         int64_t count) {
      return RingSend(epoch, succ, step, block, data, count);
    };
    transport.recv = [&](int step, int block, float* data, int64_t count) {
      return RingRecv(epoch, step, block, data, count);
    };
    const Status reduced =
        RingAllReduceSum(pos, world, flat.data(), total, transport);
    if (!reduced.ok()) return false;

    offset = 0;
    for (const Var& p : params) {
      if (p->grad.empty()) continue;
      std::memcpy(p->grad.data(), flat.data() + offset,
                  static_cast<size_t>(p->grad.size()) * sizeof(float));
      offset += p->grad.size();
    }
    return true;
  }

  /// Ships this worker's MetricsRegistry counter deltas (vs the last ship)
  /// to the supervisor for the fleet-wide gaia_dist_worker_* merge.
  /// Best-effort: a failed write is the heartbeat/report path's problem to
  /// notice, and an empty delta set sends nothing.
  void ShipMetricsDeltas(int epoch) {
    std::vector<std::pair<std::string, uint64_t>> deltas;
    for (const auto& [name, value] :
         obs::MetricsRegistry::Global().CounterSamples()) {
      uint64_t& sent = metrics_sent_[name];
      if (value > sent) {
        deltas.emplace_back(name, value - sent);
        sent = value;
      }
    }
    if (deltas.empty()) return;
    Frame frame;
    frame.type = FrameType::kMetrics;
    frame.epoch = epoch;
    frame.arg0 = static_cast<uint32_t>(options_.rank);
    frame.payload = EncodeCounterDeltas(deltas);
    (void)channel_->Write(frame);
  }

  Status RingSend(int epoch, int dst, int step, int block, const float* data,
                  int64_t count) {
    Frame frame;
    frame.type = FrameType::kRingData;
    frame.epoch = epoch;
    frame.arg0 = static_cast<uint32_t>(options_.rank);
    frame.arg1 = static_cast<uint32_t>(dst);
    frame.arg2 = static_cast<uint32_t>(step);
    frame.arg3 = static_cast<uint32_t>(block);
    frame.payload.resize(static_cast<size_t>(count) * sizeof(float));
    std::memcpy(frame.payload.data(), data, frame.payload.size());
    // dist.allreduce_send is the injected-failure hook for a lost gradient
    // hop; transient kinds ride the bounded retry ladder before the round
    // is abandoned to the skip path.
    util::FaultInjector& faults = util::FaultInjector::Global();
    return util::RetryCall(send_retry_, [&]() -> Status {
      if (auto fault = faults.Sample("dist.allreduce_send")) {
        return util::FaultStatus(*fault, "dist.allreduce_send");
      }
      return channel_->Write(frame);
    });
  }

  Status RingRecv(int epoch, int step, int block, float* data,
                  int64_t count) {
    auto deadline = util::CancelToken::WithDeadline(options_.recv_timeout_ms);
    for (;;) {
      if (pending_live_.has_value()) {
        return Status::Unavailable("ring membership changed");
      }
      Frame f;
      if (!ring_stash_.empty()) {
        // A hop that arrived before we entered the exchange (stashed by
        // DrainControl) — consume it before touching the pipe.
        f = std::move(ring_stash_.front());
        ring_stash_.pop_front();
      } else {
        auto frame = channel_->Read(deadline.get());
        if (!frame.ok()) {
          if (frame.status().code() == StatusCode::kUnavailable) {
            MarkSupervisorLost("ring recv: " + frame.status().ToString());
          } else {
            Note("ring recv failed: " + frame.status().ToString());
          }
          return frame.status();
        }
        f = std::move(frame.value());
      }
      switch (f.type) {
        case FrameType::kRingData:
          if (f.epoch == epoch && f.arg2 == static_cast<uint32_t>(step) &&
              f.arg3 == static_cast<uint32_t>(block) &&
              f.payload.size() ==
                  static_cast<size_t>(count) * sizeof(float)) {
            std::memcpy(data, f.payload.data(), f.payload.size());
            return Status::OK();
          }
          if (f.epoch == epoch) {
            // Same round but wrong slot: a schedule bug, not a straggler.
            Note("ring recv mismatch at epoch " + std::to_string(epoch) +
                 ": want step " + std::to_string(step) + " block " +
                 std::to_string(block) + ", got step " +
                 std::to_string(f.arg2) + " block " + std::to_string(f.arg3) +
                 " bytes " + std::to_string(f.payload.size()) + " (want " +
                 std::to_string(count * sizeof(float)) + ")");
          }
          break;  // stale hop from an abandoned round: drop
        case FrameType::kOutcome:
          if (HandleOutcome(f) && f.epoch == epoch) {
            return Status::Unavailable("round resolved while exchanging");
          }
          if (pending_live_.has_value()) {
            return Status::Unavailable("ring membership changed");
          }
          break;
        case FrameType::kShutdown:
          shutdown_ = true;
          return Status::Cancelled("shutdown during exchange");
        default:
          break;  // unexpected control frame: drop
      }
    }
  }

  /// Consumes whatever frames are already buffered without blocking.
  /// Control frames are applied; ring-data frames are stashed for the
  /// upcoming exchange — a faster peer's first hop can land before this
  /// worker finishes its backward pass, and dropping it would stall the
  /// ring until the recv deadline.
  void DrainControl() {
    for (;;) {
      auto frame = channel_->TryRead();
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kUnavailable) {
          MarkSupervisorLost("drain: " + frame.status().ToString());
        } else {
          Note("drain failed: " + frame.status().ToString());
        }
        return;
      }
      if (!frame.value().has_value()) return;  // pipe drained
      Frame& f = *frame.value();
      switch (f.type) {
        case FrameType::kShutdown:
          shutdown_ = true;
          return;
        case FrameType::kOutcome:
          HandleOutcome(f);
          break;
        case FrameType::kRingData:
          ring_stash_.push_back(std::move(f));
          break;
        default:
          break;
      }
    }
  }

  /// Stashes or applies an outcome frame. Returns true for a real (round)
  /// outcome, false for an asynchronous death notice (epoch < 0).
  bool HandleOutcome(const Frame& frame) {
    if (frame.epoch < 0) {
      auto ranks = DecodeRanks(frame.payload);
      if (ranks.ok()) {
        std::vector<int> live = std::move(ranks).value();
        std::sort(live.begin(), live.end());
        pending_live_ = std::move(live);
      }
      return false;
    }
    outcomes_[frame.epoch] = frame;
    return true;
  }

  std::optional<Frame> WaitOutcome(int64_t epoch) {
    auto it = outcomes_.find(epoch);
    if (it != outcomes_.end()) {
      Frame frame = it->second;
      outcomes_.erase(outcomes_.begin(), std::next(it));
      return frame;
    }
    auto deadline =
        util::CancelToken::WithDeadline(options_.outcome_timeout_ms);
    for (;;) {
      auto frame = channel_->Read(deadline.get());
      if (!frame.ok()) {
        MarkSupervisorLost("await outcome: " + frame.status().ToString());
        return std::nullopt;
      }
      Frame& f = frame.value();
      if (f.type == FrameType::kShutdown) {
        shutdown_ = true;
        return std::nullopt;
      }
      if (f.type == FrameType::kOutcome && HandleOutcome(f) &&
          f.epoch == epoch) {
        outcomes_.erase(epoch);
        return f;
      }
      // kRingData here is a straggler from a round the supervisor already
      // resolved; drop it.
    }
  }

  int RingPosition() const {
    for (size_t i = 0; i < live_.size(); ++i) {
      if (live_[i] == options_.rank) return static_cast<int>(i);
    }
    GAIA_CHECK(false);  // a live worker is always in its own membership
    return 0;
  }

  void Abort(const char* reason) { abort_->Cancel(reason); }

  void Note(const std::string& message) const {
    std::cerr << "[dist worker " << options_.rank << "] " << message << "\n";
  }

  void MarkSupervisorLost(const std::string& why) {
    supervisor_lost_ = true;
    Note("supervisor unreachable (" + why + ")");
  }

  const WorkerOptions& options_;
  Channel* channel_;
  core::ForecastModel* model_;
  util::CancelToken* abort_;
  util::RetryPolicy send_retry_;

  std::vector<int> live_;
  int current_epoch_ = -1;
  size_t batch_size_ = 0;
  int64_t shard_size_ = 0;
  /// Live set from the latest death notice; non-empty means the current
  /// ring is stale and every exchange aborts until an outcome catches the
  /// membership up.
  std::optional<std::vector<int>> pending_live_;
  /// Ring hops that arrived ahead of the exchange (see DrainControl);
  /// consumed in order by RingRecv, stale epochs dropped there.
  std::deque<Frame> ring_stash_;
  std::map<int64_t, Frame> outcomes_;
  /// Counter values already shipped upstream, per metric name; the next
  /// kMetrics frame carries only the increase since these.
  std::map<std::string, uint64_t> metrics_sent_;
  bool supervisor_lost_ = false;
  bool shutdown_ = false;
};

int Fail(int rank, const std::string& message) {
  std::cerr << "[dist worker " << rank << "] " << message << "\n";
  return 1;
}

}  // namespace

int RunTrainWorker(const WorkerOptions& options) {
  // The supervisor can die at any moment; a write to its pipe must surface
  // as EPIPE, not kill the worker.
  ::signal(SIGPIPE, SIG_IGN);
  // Exact serial replica: every ParallelFor in the forward/backward runs
  // inline, so worker results are the serial path bit for bit.
  util::ThreadPool::InlineScope inline_scope;
  GAIA_OBS_SPAN("dist.worker_fit");

  auto market =
      data::LoadMarketCsvRetry(options.market_dir, util::RetryPolicy{});
  if (!market.ok()) return Fail(options.rank, market.status().ToString());
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  if (!dataset.ok()) return Fail(options.rank, dataset.status().ToString());

  core::GaiaConfig cfg;
  cfg.channels = options.channels;
  cfg.num_layers = options.num_layers;
  cfg.tel_groups = 4;
  while (cfg.tel_groups > 1 && cfg.channels % cfg.tel_groups != 0) {
    --cfg.tel_groups;
  }
  cfg.seed = options.model_seed;
  auto model = core::GaiaModel::Create(
      cfg, dataset.value().history_len(), dataset.value().horizon(),
      dataset.value().temporal_dim(), dataset.value().static_dim());
  if (!model.ok()) return Fail(options.rank, model.status().ToString());

  Channel channel(options.read_fd, options.write_fd);
  auto abort_token = util::CancelToken::Create();
  WorkerLoop loop(options, &channel, model.value().get(), abort_token.get());

  Frame hello;
  hello.type = FrameType::kHello;
  hello.arg0 = static_cast<uint32_t>(options.rank);
  if (!channel.Write(hello).ok()) {
    return Fail(options.rank, "could not reach supervisor");
  }
  auto start_deadline =
      util::CancelToken::WithDeadline(options.outcome_timeout_ms);
  auto start = channel.Read(start_deadline.get());
  if (!start.ok() || start.value().type != FrameType::kStart) {
    return Fail(options.rank, "no start frame from supervisor");
  }
  auto initial = DecodeRanks(start.value().payload);
  if (!initial.ok()) return Fail(options.rank, initial.status().ToString());
  loop.SetMembership(std::move(initial).value());

  core::TrainResult result;
  {
    HeartbeatThread heartbeat(&channel, options.rank, options.heartbeat_ms);
    util::CancelScope cancel_scope(abort_token.get());
    core::TrainConfig train = options.train;
    // The supervisor owns wall-clock budgets; a per-worker deadline would
    // fire at different epochs on different workers and break lockstep.
    train.deadline_ms = 0.0;
    result = core::Trainer(train).Fit(model.value().get(), dataset.value(),
                                      loop.Hooks());
  }
  if (loop.supervisor_lost()) {
    return Fail(options.rank, "supervisor lost mid-training");
  }

  Frame done;
  done.type = FrameType::kDone;
  done.arg0 = static_cast<uint32_t>(options.rank);
  DoneStats stats;
  stats.epochs_run = result.epochs_run;
  stats.skipped_steps = result.skipped_steps;
  stats.best_val_loss = result.best_val_loss;
  stats.final_train_loss = result.final_train_loss;
  done.payload = EncodeStruct(stats);
  if (!channel.Write(done).ok()) {
    return Fail(options.rank, "supervisor lost at completion");
  }

  // Post-training service: save the checkpoint when asked, exit on
  // shutdown. The deadline guards against an orphaned worker outliving a
  // crashed supervisor forever.
  for (;;) {
    auto deadline =
        util::CancelToken::WithDeadline(options.outcome_timeout_ms);
    auto frame = channel.Read(deadline.get());
    if (!frame.ok()) {
      return Fail(options.rank, "supervisor lost before shutdown");
    }
    switch (frame.value().type) {
      case FrameType::kSave: {
        const std::string path(frame.value().payload.begin(),
                               frame.value().payload.end());
        const Status saved = model.value()->Save(path);
        Frame reply;
        reply.type = FrameType::kSaveDone;
        reply.arg0 = saved.ok() ? 1 : 0;
        if (!saved.ok()) {
          const std::string text = saved.ToString();
          reply.payload.assign(text.begin(), text.end());
        }
        if (!channel.Write(reply).ok()) {
          return Fail(options.rank, "supervisor lost during save");
        }
        break;
      }
      case FrameType::kShutdown:
        return 0;
      default:
        break;  // stragglers from resolved rounds: drop
    }
  }
}

}  // namespace gaia::dist
