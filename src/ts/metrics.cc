#include "ts/metrics.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace gaia::ts {

std::string ForecastMetrics::ToString() const {
  std::ostringstream os;
  os << "MAE=" << mae << " RMSE=" << rmse << " MAPE=" << mape
     << " WAPE=" << wape << " (n=" << count << ")";
  return os.str();
}

void MetricsAccumulator::Add(double predicted, double actual) {
  const double err = predicted - actual;
  abs_sum_ += std::fabs(err);
  sq_sum_ += err * err;
  actual_abs_sum_ += std::fabs(actual);
  ++count_;
  if (std::fabs(actual) >= mape_floor_) {
    ape_sum_ += std::fabs(err) / std::fabs(actual);
    ++mape_count_;
  }
}

void MetricsAccumulator::Merge(const MetricsAccumulator& other) {
  abs_sum_ += other.abs_sum_;
  sq_sum_ += other.sq_sum_;
  ape_sum_ += other.ape_sum_;
  actual_abs_sum_ += other.actual_abs_sum_;
  count_ += other.count_;
  mape_count_ += other.mape_count_;
}

ForecastMetrics MetricsAccumulator::Finalize() const {
  ForecastMetrics m;
  m.count = count_;
  m.mape_count = mape_count_;
  if (count_ > 0) {
    m.mae = abs_sum_ / static_cast<double>(count_);
    m.rmse = std::sqrt(sq_sum_ / static_cast<double>(count_));
    if (actual_abs_sum_ > 0.0) m.wape = abs_sum_ / actual_abs_sum_;
  }
  if (mape_count_ > 0) {
    m.mape = ape_sum_ / static_cast<double>(mape_count_);
  }
  return m;
}

ForecastMetrics ComputeMetrics(const std::vector<double>& predicted,
                               const std::vector<double>& actual,
                               double mape_floor) {
  GAIA_CHECK_EQ(predicted.size(), actual.size());
  MetricsAccumulator acc(mape_floor);
  for (size_t i = 0; i < predicted.size(); ++i) acc.Add(predicted[i], actual[i]);
  return acc.Finalize();
}

double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b) {
  GAIA_CHECK_EQ(a.size(), b.size());
  const size_t n = a.size();
  if (n < 2) return 0.0;
  double mean_a = 0.0, mean_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

double CrossCorrelationAtLag(const std::vector<double>& a,
                             const std::vector<double>& b, int lag) {
  // corr(a_t, b_{t+lag}) over valid t.
  const int n_a = static_cast<int>(a.size());
  const int n_b = static_cast<int>(b.size());
  std::vector<double> xs, ys;
  for (int t = 0; t < n_a; ++t) {
    const int s = t + lag;
    if (s < 0 || s >= n_b) continue;
    xs.push_back(a[static_cast<size_t>(t)]);
    ys.push_back(b[static_cast<size_t>(s)]);
  }
  if (xs.size() < 3) return 0.0;
  return PearsonCorrelation(xs, ys);
}

LagCorrelation BestLagCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b, int max_lag) {
  LagCorrelation best;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    const double c = CrossCorrelationAtLag(a, b, lag);
    if (std::fabs(c) > std::fabs(best.correlation)) {
      best.lag = lag;
      best.correlation = c;
    }
  }
  return best;
}

}  // namespace gaia::ts
