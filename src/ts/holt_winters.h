#ifndef GAIA_TS_HOLT_WINTERS_H_
#define GAIA_TS_HOLT_WINTERS_H_

#include <vector>

#include "util/status.h"

namespace gaia::ts {

/// \brief Configuration of additive Holt–Winters exponential smoothing.
struct HoltWintersConfig {
  double alpha = 0.3;     ///< level smoothing, in (0, 1)
  double beta = 0.1;      ///< trend smoothing, in [0, 1)
  double gamma = 0.2;     ///< seasonal smoothing, in [0, 1)
  int season_length = 12; ///< 0 disables the seasonal component

  Status Validate() const;
};

/// \brief Additive Holt–Winters (triple exponential) smoothing — the
/// classical seasonal forecaster, complementing ARIMA in the time-series
/// toolbox. Degrades gracefully: without enough history for a full season
/// the seasonal component is disabled (Holt's linear trend method), and a
/// single observation yields a naive forecast.
class HoltWinters {
 public:
  /// Fits level/trend/seasonal states by one smoothing pass.
  /// Pre via Status: series non-empty, config valid.
  static Result<HoltWinters> Fit(const std::vector<double>& series,
                                 const HoltWintersConfig& config);

  /// Forecasts `horizon` values ahead of the fitted series.
  std::vector<double> Forecast(int horizon) const;

  double level() const { return level_; }
  double trend() const { return trend_; }
  const std::vector<double>& seasonal() const { return seasonal_; }

  /// In-sample one-step-ahead mean squared error (for smoothing-parameter
  /// grids).
  double in_sample_mse() const { return in_sample_mse_; }

 private:
  HoltWinters() = default;

  HoltWintersConfig config_;
  double level_ = 0.0;
  double trend_ = 0.0;
  std::vector<double> seasonal_;  ///< empty when seasonality is disabled
  int fitted_length_ = 0;
  double in_sample_mse_ = 0.0;
};

/// Small grid search over (alpha, beta, gamma) by in-sample one-step MSE.
Result<HoltWinters> AutoHoltWinters(const std::vector<double>& series,
                                    int season_length = 12);

}  // namespace gaia::ts

#endif  // GAIA_TS_HOLT_WINTERS_H_
