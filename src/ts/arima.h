#ifndef GAIA_TS_ARIMA_H_
#define GAIA_TS_ARIMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gaia::ts {

/// \brief Configuration of an ARIMA(p, d, q) model.
struct ArimaOrder {
  int p = 1;  ///< autoregressive order
  int d = 0;  ///< differencing order
  int q = 0;  ///< moving-average order
};

/// \brief ARIMA(p, d, q) fitted by the Hannan–Rissanen two-stage procedure.
///
/// Stage 1 fits a long autoregression by ordinary least squares to estimate
/// innovations; stage 2 regresses the (differenced) series on its own lags
/// and the estimated innovations. Forecasts run the recursion forward with
/// future innovations set to zero and integrate the differencing back. This
/// is the classical-baseline comparator from Table I (max p = max q = 2 per
/// the paper's grid).
class Arima {
 public:
  /// Fits the model. Requires enough observations after differencing
  /// (roughly 3 * (p + q) + 5); shorter series get kNotEnoughData and the
  /// caller should fall back (see ForecastWithFallback).
  static Result<Arima> Fit(const std::vector<double>& series,
                           const ArimaOrder& order);

  /// Forecasts `horizon` future values.
  std::vector<double> Forecast(int horizon) const;

  /// Akaike information criterion of the stage-2 regression fit.
  double aic() const { return aic_; }

  const ArimaOrder& order() const { return order_; }
  const std::vector<double>& ar_coefficients() const { return ar_; }
  const std::vector<double>& ma_coefficients() const { return ma_; }
  double intercept() const { return intercept_; }

  std::string ToString() const;

 private:
  Arima() = default;

  ArimaOrder order_;
  double intercept_ = 0.0;
  std::vector<double> ar_;
  std::vector<double> ma_;
  double aic_ = 0.0;
  // Tail state required by the forecast recursion.
  std::vector<double> diffed_;     ///< differenced series
  std::vector<double> residuals_;  ///< stage-2 innovations
  std::vector<double> last_values_;  ///< original tail for integration
};

/// Grid-searches (p, d, q) with p <= max_p, q <= max_q, d <= max_d by AIC.
/// Returns the best fitted model; fails when nothing fits.
Result<Arima> AutoArima(const std::vector<double>& series, int max_p,
                        int max_d, int max_q);

/// Production-style entry point: tries AutoArima, falling back to a drift /
/// mean / naive forecast when the series is too short for any ARIMA —
/// mirrors how the deployed baseline handles "new shop" histories.
std::vector<double> ForecastWithFallback(const std::vector<double>& series,
                                         int horizon, int max_p = 2,
                                         int max_d = 1, int max_q = 2);

/// d-th order differencing helper (exposed for tests).
std::vector<double> Difference(const std::vector<double>& series, int d);

/// Inverts one differencing step given the original tail values.
std::vector<double> Integrate(const std::vector<double>& diffed_forecast,
                              const std::vector<double>& last_values, int d);

}  // namespace gaia::ts

#endif  // GAIA_TS_ARIMA_H_
