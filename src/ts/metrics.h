#ifndef GAIA_TS_METRICS_H_
#define GAIA_TS_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gaia::ts {

/// \brief The paper's evaluation triple (Table I): mean absolute error, root
/// mean squared error and mean absolute percentage error.
struct ForecastMetrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;
  /// Weighted APE: sum|err| / sum|actual| — robust to MAPE's heavy upper
  /// tail on near-dormant shops (see EXPERIMENTS.md).
  double wape = 0.0;
  int64_t count = 0;       ///< samples in MAE/RMSE
  int64_t mape_count = 0;  ///< samples in MAPE (excludes tiny denominators)

  std::string ToString() const;
};

/// \brief Streaming accumulator for forecast errors.
///
/// MAPE is undefined for near-zero actuals; samples whose |actual| falls
/// below `mape_floor` are excluded from the MAPE average only (standard
/// practice for GMV data where dormant months occur).
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(double mape_floor = 1.0)
      : mape_floor_(mape_floor) {}

  void Add(double predicted, double actual);

  /// Merges another accumulator (same floor expected).
  void Merge(const MetricsAccumulator& other);

  ForecastMetrics Finalize() const;

  int64_t count() const { return count_; }

 private:
  double mape_floor_;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  double actual_abs_sum_ = 0.0;
  int64_t count_ = 0;
  int64_t mape_count_ = 0;
};

/// One-shot metric computation over parallel prediction/actual vectors.
ForecastMetrics ComputeMetrics(const std::vector<double>& predicted,
                               const std::vector<double>& actual,
                               double mape_floor = 1.0);

/// Pearson correlation between two equal-length series.
double PearsonCorrelation(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Normalized cross correlation of a and b at the given lag: corr(a_t,
/// b_{t+lag}) over the overlapping window. Returns 0 when the overlap is too
/// short or a series is constant.
double CrossCorrelationAtLag(const std::vector<double>& a,
                             const std::vector<double>& b, int lag);

/// Lag in [-max_lag, max_lag] maximizing |cross correlation|, with the
/// attained correlation. Used by the Fig. 4 case study and simulator tests.
struct LagCorrelation {
  int lag = 0;
  double correlation = 0.0;
};
LagCorrelation BestLagCorrelation(const std::vector<double>& a,
                                  const std::vector<double>& b, int max_lag);

}  // namespace gaia::ts

#endif  // GAIA_TS_METRICS_H_
