#include "ts/arima.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "util/check.h"

namespace gaia::ts {

namespace {

/// Solves the OLS normal equations (X'X + ridge*I) beta = X'y by Gaussian
/// elimination with partial pivoting. `rows` is the design matrix, one
/// vector per observation. Returns false when the system is singular.
bool SolveOls(const std::vector<std::vector<double>>& rows,
              const std::vector<double>& y, std::vector<double>* beta,
              double ridge = 1e-8) {
  GAIA_CHECK_EQ(rows.size(), y.size());
  if (rows.empty()) return false;
  const size_t k = rows[0].size();
  std::vector<std::vector<double>> a(k, std::vector<double>(k + 1, 0.0));
  for (size_t r = 0; r < rows.size(); ++r) {
    GAIA_CHECK_EQ(rows[r].size(), k);
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) a[i][j] += rows[r][i] * rows[r][j];
      a[i][k] += rows[r][i] * y[r];
    }
  }
  for (size_t i = 0; i < k; ++i) a[i][i] += ridge;
  // Gaussian elimination with partial pivoting on the augmented system.
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = a[r][col] / a[col][col];
      for (size_t c = col; c <= k; ++c) a[r][c] -= factor * a[col][c];
    }
  }
  beta->assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) (*beta)[i] = a[i][k] / a[i][i];
  return true;
}

}  // namespace

std::vector<double> Difference(const std::vector<double>& series, int d) {
  GAIA_CHECK_GE(d, 0);
  std::vector<double> out = series;
  for (int round = 0; round < d; ++round) {
    if (out.size() <= 1) return {};
    std::vector<double> next(out.size() - 1);
    for (size_t i = 0; i + 1 < out.size(); ++i) next[i] = out[i + 1] - out[i];
    out = std::move(next);
  }
  return out;
}

std::vector<double> Integrate(const std::vector<double>& diffed_forecast,
                              const std::vector<double>& last_values, int d) {
  GAIA_CHECK_GE(d, 0);
  if (d == 0) return diffed_forecast;
  // Build the differencing pyramid of the observed series; level k holds the
  // k-times differenced series. Integrating walks back up from level d.
  std::vector<std::vector<double>> levels(static_cast<size_t>(d) + 1);
  levels[0] = last_values;
  for (int k = 1; k <= d; ++k) {
    levels[static_cast<size_t>(k)] =
        Difference(levels[static_cast<size_t>(k - 1)], 1);
    GAIA_CHECK(!levels[static_cast<size_t>(k)].empty())
        << "series too short to invert differencing";
  }
  std::vector<double> cur = diffed_forecast;
  for (int k = d - 1; k >= 0; --k) {
    const double anchor = levels[static_cast<size_t>(k)].back();
    std::vector<double> next(cur.size());
    double running = anchor;
    for (size_t i = 0; i < cur.size(); ++i) {
      running += cur[i];
      next[i] = running;
    }
    cur = std::move(next);
  }
  return cur;
}

Result<Arima> Arima::Fit(const std::vector<double>& series,
                         const ArimaOrder& order) {
  if (order.p < 0 || order.d < 0 || order.q < 0) {
    return Status::InvalidArgument("negative ARIMA order");
  }
  if (order.p == 0 && order.q == 0) {
    return Status::InvalidArgument("p and q cannot both be zero");
  }
  std::vector<double> w = Difference(series, order.d);
  const int n = static_cast<int>(w.size());
  const int k_params = 1 + order.p + order.q;
  const int min_obs = 3 * (order.p + order.q) + 5;
  if (n < min_obs) {
    return Status::FailedPrecondition(
        "not enough observations after differencing: " + std::to_string(n));
  }

  // Stage 1: long-AR innovations estimate (only needed when q > 0).
  std::vector<double> innovations(static_cast<size_t>(n), 0.0);
  if (order.q > 0) {
    const int m = std::min(std::max(order.p + order.q + 2, 4), n / 3);
    std::vector<std::vector<double>> x_rows;
    std::vector<double> y_vals;
    for (int t = m; t < n; ++t) {
      std::vector<double> row = {1.0};
      for (int lag = 1; lag <= m; ++lag) {
        row.push_back(w[static_cast<size_t>(t - lag)]);
      }
      x_rows.push_back(std::move(row));
      y_vals.push_back(w[static_cast<size_t>(t)]);
    }
    std::vector<double> beta;
    if (!SolveOls(x_rows, y_vals, &beta)) {
      return Status::Internal("stage-1 AR regression is singular");
    }
    for (int t = m; t < n; ++t) {
      double fitted = beta[0];
      for (int lag = 1; lag <= m; ++lag) {
        fitted += beta[static_cast<size_t>(lag)] * w[static_cast<size_t>(t - lag)];
      }
      innovations[static_cast<size_t>(t)] = w[static_cast<size_t>(t)] - fitted;
    }
  }

  // Stage 2: regress w_t on [1, w lags, innovation lags].
  const int t0 = std::max(order.p, order.q);
  std::vector<std::vector<double>> x_rows;
  std::vector<double> y_vals;
  for (int t = t0; t < n; ++t) {
    std::vector<double> row = {1.0};
    for (int lag = 1; lag <= order.p; ++lag) {
      row.push_back(w[static_cast<size_t>(t - lag)]);
    }
    for (int lag = 1; lag <= order.q; ++lag) {
      row.push_back(innovations[static_cast<size_t>(t - lag)]);
    }
    x_rows.push_back(std::move(row));
    y_vals.push_back(w[static_cast<size_t>(t)]);
  }
  if (static_cast<int>(x_rows.size()) < k_params + 2) {
    return Status::FailedPrecondition("too few stage-2 rows");
  }
  std::vector<double> beta;
  if (!SolveOls(x_rows, y_vals, &beta)) {
    return Status::Internal("stage-2 regression is singular");
  }

  Arima model;
  model.order_ = order;
  model.intercept_ = beta[0];
  model.ar_.assign(beta.begin() + 1, beta.begin() + 1 + order.p);
  model.ma_.assign(beta.begin() + 1 + order.p, beta.end());
  model.diffed_ = w;
  model.last_values_ = series;

  // Recompute in-sample residuals with the fitted coefficients.
  model.residuals_.assign(static_cast<size_t>(n), 0.0);
  double sse = 0.0;
  int n_eff = 0;
  for (int t = t0; t < n; ++t) {
    double fitted = model.intercept_;
    for (int lag = 1; lag <= order.p; ++lag) {
      fitted += model.ar_[static_cast<size_t>(lag - 1)] *
                w[static_cast<size_t>(t - lag)];
    }
    for (int lag = 1; lag <= order.q; ++lag) {
      fitted += model.ma_[static_cast<size_t>(lag - 1)] *
                model.residuals_[static_cast<size_t>(t - lag)];
    }
    const double resid = w[static_cast<size_t>(t)] - fitted;
    model.residuals_[static_cast<size_t>(t)] = resid;
    sse += resid * resid;
    ++n_eff;
  }
  const double sigma2 = std::max(sse / std::max(n_eff, 1), 1e-12);
  model.aic_ = n_eff * std::log(sigma2) + 2.0 * (k_params + 1);
  return model;
}

std::vector<double> Arima::Forecast(int horizon) const {
  GAIA_CHECK_GT(horizon, 0);
  std::vector<double> w = diffed_;
  std::vector<double> e = residuals_;
  std::vector<double> diff_forecast;
  diff_forecast.reserve(static_cast<size_t>(horizon));
  for (int h = 0; h < horizon; ++h) {
    const int t = static_cast<int>(w.size());
    double value = intercept_;
    for (int lag = 1; lag <= order_.p; ++lag) {
      const int idx = t - lag;
      value += ar_[static_cast<size_t>(lag - 1)] *
               (idx >= 0 ? w[static_cast<size_t>(idx)] : 0.0);
    }
    for (int lag = 1; lag <= order_.q; ++lag) {
      const int idx = t - lag;
      value += ma_[static_cast<size_t>(lag - 1)] *
               (idx >= 0 ? e[static_cast<size_t>(idx)] : 0.0);
    }
    w.push_back(value);
    e.push_back(0.0);  // future innovations have zero expectation
    diff_forecast.push_back(value);
  }
  return Integrate(diff_forecast, last_values_, order_.d);
}

std::string Arima::ToString() const {
  std::ostringstream os;
  os << "ARIMA(" << order_.p << "," << order_.d << "," << order_.q
     << ") intercept=" << intercept_ << " aic=" << aic_;
  return os.str();
}

Result<Arima> AutoArima(const std::vector<double>& series, int max_p,
                        int max_d, int max_q) {
  std::optional<Arima> best;
  for (int d = 0; d <= max_d; ++d) {
    for (int p = 0; p <= max_p; ++p) {
      for (int q = 0; q <= max_q; ++q) {
        if (p == 0 && q == 0) continue;
        Result<Arima> fit = Arima::Fit(series, ArimaOrder{p, d, q});
        if (!fit.ok()) continue;
        if (!best.has_value() || fit.value().aic() < best->aic()) {
          best = std::move(fit).value();
        }
      }
    }
  }
  if (!best.has_value()) return Status::FailedPrecondition("no ARIMA order fits");
  return *std::move(best);
}

std::vector<double> ForecastWithFallback(const std::vector<double>& series,
                                         int horizon, int max_p, int max_d,
                                         int max_q) {
  GAIA_CHECK_GT(horizon, 0);
  if (series.empty()) return std::vector<double>(static_cast<size_t>(horizon), 0.0);
  Result<Arima> fit = AutoArima(series, max_p, max_d, max_q);
  if (fit.ok()) {
    std::vector<double> forecast = fit.value().Forecast(horizon);
    // Guard against explosive fits on awkward series: clamp to a sane
    // multiple of the observed range, as a production system would.
    const double max_obs = *std::max_element(series.begin(), series.end());
    const double cap = 10.0 * std::max(max_obs, 1.0);
    bool sane = true;
    for (double v : forecast) {
      if (!std::isfinite(v) || std::fabs(v) > cap) sane = false;
    }
    if (sane) return forecast;
  }
  // Fallback: mean of the recent window (new-shop / degenerate histories).
  const size_t window = std::min<size_t>(series.size(), 3);
  double mean = 0.0;
  for (size_t i = series.size() - window; i < series.size(); ++i) {
    mean += series[i];
  }
  mean /= static_cast<double>(window);
  return std::vector<double>(static_cast<size_t>(horizon), mean);
}

}  // namespace gaia::ts
