#include "ts/holt_winters.h"

#include <algorithm>
#include <cmath>
#include <optional>

namespace gaia::ts {

Status HoltWintersConfig::Validate() const {
  if (alpha <= 0.0 || alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (beta < 0.0 || beta >= 1.0) {
    return Status::InvalidArgument("beta must be in [0, 1)");
  }
  if (gamma < 0.0 || gamma >= 1.0) {
    return Status::InvalidArgument("gamma must be in [0, 1)");
  }
  if (season_length < 0) {
    return Status::InvalidArgument("season_length must be >= 0");
  }
  return Status::OK();
}

Result<HoltWinters> HoltWinters::Fit(const std::vector<double>& series,
                                     const HoltWintersConfig& config) {
  GAIA_RETURN_NOT_OK(config.Validate());
  if (series.empty()) {
    return Status::InvalidArgument("cannot fit Holt-Winters on empty series");
  }
  HoltWinters model;
  model.config_ = config;
  model.fitted_length_ = static_cast<int>(series.size());

  const int m = config.season_length;
  const bool seasonal =
      m > 1 && static_cast<int>(series.size()) >= 2 * m;

  // Initialization: level = mean of first season (or first value), trend =
  // average first-difference across the first season, seasonal = deviation
  // of the first season from its mean.
  if (seasonal) {
    double first_season_mean = 0.0;
    for (int i = 0; i < m; ++i) first_season_mean += series[static_cast<size_t>(i)];
    first_season_mean /= m;
    model.level_ = first_season_mean;
    double trend = 0.0;
    for (int i = 0; i < m; ++i) {
      trend += (series[static_cast<size_t>(i + m)] -
                series[static_cast<size_t>(i)]) /
               m;
    }
    model.trend_ = trend / m;
    model.seasonal_.resize(static_cast<size_t>(m));
    for (int i = 0; i < m; ++i) {
      model.seasonal_[static_cast<size_t>(i)] =
          series[static_cast<size_t>(i)] - first_season_mean;
    }
  } else {
    model.level_ = series.front();
    model.trend_ =
        series.size() > 1 ? series[1] - series[0] : 0.0;
  }

  // Smoothing pass with one-step-ahead error tracking.
  double sse = 0.0;
  int n_err = 0;
  const int start = seasonal ? m : 1;
  for (int t = start; t < static_cast<int>(series.size()); ++t) {
    const double value = series[static_cast<size_t>(t)];
    const double season_term =
        seasonal ? model.seasonal_[static_cast<size_t>(t % m)] : 0.0;
    const double forecast = model.level_ + model.trend_ + season_term;
    const double err = value - forecast;
    sse += err * err;
    ++n_err;
    const double prev_level = model.level_;
    model.level_ = config.alpha * (value - season_term) +
                   (1.0 - config.alpha) * (model.level_ + model.trend_);
    model.trend_ = config.beta * (model.level_ - prev_level) +
                   (1.0 - config.beta) * model.trend_;
    if (seasonal) {
      double& s = model.seasonal_[static_cast<size_t>(t % m)];
      s = config.gamma * (value - model.level_) + (1.0 - config.gamma) * s;
    }
  }
  model.in_sample_mse_ = n_err > 0 ? sse / n_err : 0.0;
  return model;
}

std::vector<double> HoltWinters::Forecast(int horizon) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(horizon));
  const int m = static_cast<int>(seasonal_.size());
  for (int h = 1; h <= horizon; ++h) {
    double value = level_ + h * trend_;
    if (m > 0) {
      value += seasonal_[static_cast<size_t>((fitted_length_ + h - 1) % m)];
    }
    out.push_back(std::max(value, 0.0));  // GMV is non-negative
  }
  return out;
}

Result<HoltWinters> AutoHoltWinters(const std::vector<double>& series,
                                    int season_length) {
  std::optional<HoltWinters> best;
  for (double alpha : {0.2, 0.4, 0.6, 0.8}) {
    for (double beta : {0.05, 0.2}) {
      for (double gamma : {0.1, 0.3}) {
        HoltWintersConfig cfg;
        cfg.alpha = alpha;
        cfg.beta = beta;
        cfg.gamma = gamma;
        cfg.season_length = season_length;
        auto fit = HoltWinters::Fit(series, cfg);
        if (!fit.ok()) continue;
        if (!best.has_value() ||
            fit.value().in_sample_mse() < best->in_sample_mse()) {
          best = std::move(fit).value();
        }
      }
    }
  }
  if (!best.has_value()) {
    return Status::FailedPrecondition("no Holt-Winters configuration fits");
  }
  return *std::move(best);
}

}  // namespace gaia::ts
