#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace gaia::data {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

Status DatasetOptions::Validate() const {
  if (train_fraction <= 0.0 || val_fraction < 0.0 ||
      train_fraction + val_fraction >= 1.0) {
    return Status::InvalidArgument(
        "train/val fractions must be positive and leave room for test");
  }
  if (mape_floor < 0.0) {
    return Status::InvalidArgument("mape_floor must be non-negative");
  }
  return Status::OK();
}

Result<ForecastDataset> ForecastDataset::Create(const MarketData& market,
                                                const DatasetOptions& options) {
  GAIA_RETURN_NOT_OK(options.Validate());
  const MarketConfig& cfg = market.config;
  const auto n = static_cast<int32_t>(market.shops.size());
  if (n == 0) return Status::InvalidArgument("market has no shops");

  ForecastDataset ds;
  ds.history_len_ = cfg.history_months;
  ds.horizon_ = cfg.horizon_months;
  ds.mape_floor_ = options.mape_floor;
  // Temporal feature layout: [sin month, cos month, log orders, log
  // customers, active mask, festival flag].
  ds.temporal_dim_ = 6;
  // Static layout: industry one-hot | region one-hot | log age | supplier.
  ds.static_dim_ = cfg.num_industries + cfg.num_regions + 2;
  ds.graph_ = market.graph;

  const int64_t t_len = ds.history_len_;
  ds.z_.reserve(static_cast<size_t>(n));
  ds.temporal_.reserve(static_cast<size_t>(n));
  ds.static_.reserve(static_cast<size_t>(n));
  ds.target_.reserve(static_cast<size_t>(n));
  ds.scale_.reserve(static_cast<size_t>(n));
  ds.series_length_.reserve(static_cast<size_t>(n));

  for (int32_t v = 0; v < n; ++v) {
    const Shop& shop = market.shops[static_cast<size_t>(v)];
    GAIA_CHECK_EQ(static_cast<int64_t>(shop.gmv.size()), cfg.total_months());

    // Per-shop scale from the active history window.
    double sum = 0.0;
    int active = 0;
    for (int m = shop.birth_month; m < cfg.history_months; ++m) {
      sum += shop.gmv[static_cast<size_t>(m)];
      ++active;
    }
    const double scale = active > 0 && sum > 0.0
                             ? sum / static_cast<double>(active)
                             : 1.0;
    ds.scale_.push_back(scale);
    ds.series_length_.push_back(cfg.history_months - shop.birth_month);

    Tensor z({t_len});
    Tensor temporal({t_len, ds.temporal_dim_});
    for (int m = 0; m < cfg.history_months; ++m) {
      const int cal = market.CalendarMonth(m);
      z.at(m) = static_cast<float>(shop.gmv[static_cast<size_t>(m)] / scale);
      temporal.at(m, 0) =
          static_cast<float>(std::sin(2.0 * kPi * cal / 12.0));
      temporal.at(m, 1) =
          static_cast<float>(std::cos(2.0 * kPi * cal / 12.0));
      temporal.at(m, 2) = static_cast<float>(
          std::log1p(shop.orders[static_cast<size_t>(m)]) * 0.1);
      temporal.at(m, 3) = static_cast<float>(
          std::log1p(shop.customers[static_cast<size_t>(m)]) * 0.1);
      temporal.at(m, 4) = m >= shop.birth_month ? 1.0f : 0.0f;
      temporal.at(m, 5) =
          cal == cfg.festival_calendar_month ? 1.0f : 0.0f;  // festival flag
    }
    ds.z_.push_back(std::move(z));
    ds.temporal_.push_back(std::move(temporal));

    Tensor stat({ds.static_dim_});
    stat.at(shop.industry) = 1.0f;
    stat.at(cfg.num_industries + shop.region) = 1.0f;
    stat.at(cfg.num_industries + cfg.num_regions) = static_cast<float>(
        std::log1p(static_cast<double>(shop.age_months)) /
        std::log1p(static_cast<double>(cfg.history_months)));
    stat.at(cfg.num_industries + cfg.num_regions + 1) =
        shop.is_supplier ? 1.0f : 0.0f;
    ds.static_.push_back(std::move(stat));

    Tensor target({ds.horizon_});
    for (int h = 0; h < cfg.horizon_months; ++h) {
      target.at(h) = static_cast<float>(
          shop.gmv[static_cast<size_t>(cfg.history_months + h)] / scale);
    }
    ds.target_.push_back(std::move(target));
  }

  // Node split (inductive protocol: held-out shops are never in the loss).
  std::vector<int32_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  Rng split_rng(options.split_seed);
  split_rng.Shuffle(&order);
  const auto train_end =
      static_cast<size_t>(options.train_fraction * static_cast<double>(n));
  const auto val_end = static_cast<size_t>(
      (options.train_fraction + options.val_fraction) * static_cast<double>(n));
  ds.train_nodes_.assign(order.begin(), order.begin() + train_end);
  ds.val_nodes_.assign(order.begin() + train_end, order.begin() + val_end);
  ds.test_nodes_.assign(order.begin() + val_end, order.end());
  if (ds.train_nodes_.empty() || ds.test_nodes_.empty()) {
    return Status::InvalidArgument("split produced an empty partition");
  }
  return ds;
}

}  // namespace gaia::data
