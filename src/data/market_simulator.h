#ifndef GAIA_DATA_MARKET_SIMULATOR_H_
#define GAIA_DATA_MARKET_SIMULATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/regime.h"
#include "graph/eseller_graph.h"
#include "util/rng.h"
#include "util/status.h"

namespace gaia::data {

/// \brief Configuration of the synthetic e-seller market.
///
/// The simulator is the documented substitution for the proprietary Alipay
/// dataset (DESIGN.md §2). It plants exactly the structures Gaia exploits:
///  * skewed shop-age distribution  -> temporal deficiency (paper Fig. 1a),
///  * supplier lead over retailers  -> inter temporal shift,
///  * 12-month industry seasonality + November shopping-festival spike
///                                  -> intra temporal shift,
///  * same-owner clusters           -> correlated trends across shops.
struct MarketConfig {
  int64_t num_shops = 600;
  int num_industries = 6;
  int num_regions = 8;
  /// Observed history length T (months). The paper uses 24.
  int history_months = 24;
  /// Forecast horizon T' (months). The paper predicts Oct/Nov/Dec (3).
  int horizon_months = 3;
  /// Calendar month (0 = January) of the first generated month. With the
  /// default 24-month history starting in October, the 3 forecast months are
  /// October/November/December — the paper's evaluation months.
  int start_calendar_month = 9;

  /// Fraction of shops acting as upstream suppliers.
  double supplier_fraction = 0.3;
  /// Suppliers per retailer is uniform in [1, max_suppliers_per_retailer].
  int max_suppliers_per_retailer = 3;
  /// Supplier GMV leads downstream retailer GMV by [min_lead, max_lead].
  int min_lead_months = 1;
  int max_lead_months = 4;

  /// Fraction of shops grouped into same-owner clusters (size 2-4).
  double owner_cluster_fraction = 0.3;
  /// Fraction of extra random (noise) edges relative to true edges.
  double noise_edge_fraction = 0.05;

  /// Pareto shape for the shop-age distribution; smaller = more new shops.
  double age_pareto_alpha = 1.1;
  /// Minimum observed months for any shop.
  int min_age_months = 4;

  /// Multiplicative observation noise level on GMV.
  double noise_level = 0.12;
  /// November festival demand spike (fraction of base level).
  double festival_boost = 0.9;
  /// Calendar month (0 = January) carrying the festival spike. November by
  /// default; a RegimeScript festival_shift event moves it.
  int festival_calendar_month = 10;
  /// Amplitude of the industry seasonal component.
  double seasonal_amplitude = 0.45;
  /// Log-normal location/scale of per-shop GMV magnitude; exp(11.0) ~ 60k,
  /// matching the order of magnitude of the paper's MAE/RMSE columns.
  double log_scale_mu = 11.0;
  double log_scale_sigma = 0.9;

  uint64_t seed = 42;

  /// Total generated months (history + horizon).
  int total_months() const { return history_months + horizon_months; }

  /// Checks ranges; returned status explains the first violation.
  Status Validate() const;
};

/// \brief One simulated e-seller.
struct Shop {
  int32_t id = 0;
  int industry = 0;
  int region = 0;
  bool is_supplier = false;
  /// Months of observed history (<= history_months); the "temporal
  /// deficiency" variable the paper groups on (T < 10 => "New Shop").
  int age_months = 0;
  /// Index into [0, total_months) of the first active month.
  int birth_month = 0;
  /// Monthly GMV over all total_months() months; zero before birth.
  std::vector<double> gmv;
  /// Auxiliary temporal features (paper §IV-A): monthly customers & orders.
  std::vector<double> customers;
  std::vector<double> orders;
};

/// \brief Ground-truth supply link with its lead time.
struct SupplyLink {
  int32_t supplier = 0;
  int32_t retailer = 0;
  int lead_months = 0;
};

/// \brief Fully generated market: shops, relations, and the e-seller graph.
struct MarketData {
  MarketConfig config;
  std::vector<Shop> shops;
  graph::EsellerGraph graph;
  std::vector<SupplyLink> supply_links;
  std::vector<std::vector<int32_t>> owner_clusters;

  /// Calendar month (0-11) of global month index m.
  int CalendarMonth(int m) const {
    return (config.start_calendar_month + m) % 12;
  }
};

/// \brief Deterministic generator for MarketData.
class MarketSimulator {
 public:
  explicit MarketSimulator(MarketConfig config) : config_(config) {}

  /// Simulator with an adversarial regime layered on top. Config-level
  /// events (festival shifts) are folded into the config here; series-level
  /// events are applied after generation. An empty script makes this
  /// bitwise identical to the plain constructor.
  MarketSimulator(MarketConfig config, RegimeScript regime)
      : config_(config), regime_(std::move(regime)) {
    regime_.ApplyPreGeneration(&config_);
  }

  /// Generates the market; fails when the config is invalid.
  Result<MarketData> Generate() const;

 private:
  MarketConfig config_;
  RegimeScript regime_;
};

}  // namespace gaia::data

#endif  // GAIA_DATA_MARKET_SIMULATOR_H_
