#ifndef GAIA_DATA_DATASET_H_
#define GAIA_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "data/market_simulator.h"
#include "graph/eseller_graph.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace gaia::data {

/// \brief Options for assembling model-ready features from a market.
struct DatasetOptions {
  double train_fraction = 0.7;
  double val_fraction = 0.1;
  uint64_t split_seed = 7;
  /// |actual| below this is excluded from MAPE (denormalized GMV units).
  double mape_floor = 100.0;

  Status Validate() const;
};

/// \brief Model-ready view of a simulated market.
///
/// Per shop v it exposes the paper's three inputs (z_v series, temporal
/// features F^T_v, static features f^S_v) plus the normalized forecast
/// target. GMV is normalized per shop by its mean active-history GMV so the
/// network trains on O(1) values; Denormalize maps predictions back to GMV
/// units for metric computation.
class ForecastDataset {
 public:
  static Result<ForecastDataset> Create(const MarketData& market,
                                        const DatasetOptions& options);

  int64_t num_nodes() const { return static_cast<int64_t>(z_.size()); }
  int64_t history_len() const { return history_len_; }     ///< T
  int64_t horizon() const { return horizon_; }             ///< T'
  int64_t temporal_dim() const { return temporal_dim_; }   ///< D^T
  int64_t static_dim() const { return static_dim_; }       ///< D^S

  /// Normalized GMV history of shop v, shape [T] (zeros before birth).
  const Tensor& z(int32_t v) const { return z_[static_cast<size_t>(v)]; }

  /// Auxiliary temporal features, shape [T, D^T].
  const Tensor& temporal(int32_t v) const {
    return temporal_[static_cast<size_t>(v)];
  }

  /// Auxiliary static features, shape [D^S].
  const Tensor& static_features(int32_t v) const {
    return static_[static_cast<size_t>(v)];
  }

  /// Normalized forecast target, shape [T'].
  const Tensor& target(int32_t v) const {
    return target_[static_cast<size_t>(v)];
  }

  /// Per-shop normalization scale (mean active-history GMV).
  double scale(int32_t v) const { return scale_[static_cast<size_t>(v)]; }

  /// Maps a normalized prediction back to GMV units.
  double Denormalize(int32_t v, double normalized) const {
    return normalized * scale(v);
  }

  /// Ground-truth GMV of shop v at horizon step h, in GMV units.
  double ActualGmv(int32_t v, int h) const {
    return Denormalize(v, target(v).at(h));
  }

  /// Observed history length of shop v (the Fig. 3 grouping variable).
  int series_length(int32_t v) const {
    return series_length_[static_cast<size_t>(v)];
  }

  const graph::EsellerGraph& graph() const { return graph_; }

  const std::vector<int32_t>& train_nodes() const { return train_nodes_; }
  const std::vector<int32_t>& val_nodes() const { return val_nodes_; }
  const std::vector<int32_t>& test_nodes() const { return test_nodes_; }

  double mape_floor() const { return mape_floor_; }

 private:
  ForecastDataset() = default;

  int64_t history_len_ = 0;
  int64_t horizon_ = 0;
  int64_t temporal_dim_ = 0;
  int64_t static_dim_ = 0;
  double mape_floor_ = 100.0;
  std::vector<Tensor> z_;
  std::vector<Tensor> temporal_;
  std::vector<Tensor> static_;
  std::vector<Tensor> target_;
  std::vector<double> scale_;
  std::vector<int> series_length_;
  graph::EsellerGraph graph_;
  std::vector<int32_t> train_nodes_;
  std::vector<int32_t> val_nodes_;
  std::vector<int32_t> test_nodes_;
};

}  // namespace gaia::data

#endif  // GAIA_DATA_DATASET_H_
