#ifndef GAIA_DATA_MARKET_IO_H_
#define GAIA_DATA_MARKET_IO_H_

#include <string>

#include "data/market_simulator.h"
#include "util/retry.h"
#include "util/status.h"

namespace gaia::data {

/// \brief CSV persistence for markets — the ingestion path for real data.
///
/// A market directory contains four files:
///   meta.csv   one row: num_shops, industries, regions, history, horizon,
///              start_calendar_month
///   shops.csv  per shop: id, industry, region, is_supplier, age_months,
///              birth_month
///   series.csv per (shop, month): shop, month, gmv, customers, orders
///   edges.csv  per relation: src, dst, type (0 = supply chain,
///              1 = same owner); stored directed exactly as aggregated
///
/// Users with production data can write these files from their own systems
/// and feed them straight into ForecastDataset::Create.
Status SaveMarketCsv(const MarketData& market, const std::string& dir);

/// Loads a market saved by SaveMarketCsv (or hand-authored to the same
/// schema). Validates shapes, ranges, value finiteness, duplicate rows and
/// graph consistency: malformed input comes back as a precise Status
/// (kNotFound for missing files, kInvalidArgument / kOutOfRange /
/// kAlreadyExists for bad rows) rather than a silent mis-parse.
/// Fault site: "market.read".
Result<MarketData> LoadMarketCsv(const std::string& dir);

/// LoadMarketCsv wrapped in the retry policy: transient failures (kIoError,
/// kUnavailable, kDeadlineExceeded) are retried with exponential backoff;
/// malformed data is not.
Result<MarketData> LoadMarketCsvRetry(const std::string& dir,
                                      const util::RetryPolicy& policy);

}  // namespace gaia::data

#endif  // GAIA_DATA_MARKET_IO_H_
