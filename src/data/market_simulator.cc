#include "data/market_simulator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace gaia::data {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Smooth AR(1) factor series in roughly [-1, 1].
std::vector<double> SmoothFactor(int length, double persistence, Rng* rng) {
  std::vector<double> out(static_cast<size_t>(length));
  double state = rng->Normal(0.0, 0.5);
  for (int t = 0; t < length; ++t) {
    state = persistence * state + rng->Normal(0.0, 0.25);
    out[static_cast<size_t>(t)] = std::clamp(state, -1.0, 1.0);
  }
  return out;
}

}  // namespace

Status MarketConfig::Validate() const {
  if (num_shops < 10) {
    return Status::InvalidArgument("num_shops must be >= 10");
  }
  if (num_industries < 1 || num_regions < 1) {
    return Status::InvalidArgument("need at least one industry and region");
  }
  if (history_months < 6) {
    return Status::InvalidArgument("history_months must be >= 6");
  }
  if (horizon_months < 1) {
    return Status::InvalidArgument("horizon_months must be >= 1");
  }
  if (supplier_fraction <= 0.0 || supplier_fraction >= 0.9) {
    return Status::InvalidArgument("supplier_fraction must be in (0, 0.9)");
  }
  if (min_lead_months < 0 || max_lead_months < min_lead_months) {
    return Status::InvalidArgument("invalid lead month range");
  }
  if (max_lead_months > horizon_months + 6) {
    return Status::InvalidArgument("max_lead_months unreasonably large");
  }
  if (owner_cluster_fraction < 0.0 || owner_cluster_fraction > 0.8) {
    return Status::InvalidArgument("owner_cluster_fraction must be in [0, 0.8]");
  }
  if (min_age_months < 1 || min_age_months > history_months) {
    return Status::InvalidArgument("min_age_months out of range");
  }
  if (age_pareto_alpha <= 0.0) {
    return Status::InvalidArgument("age_pareto_alpha must be positive");
  }
  if (noise_level < 0.0 || noise_level > 1.0) {
    return Status::InvalidArgument("noise_level must be in [0, 1]");
  }
  if (festival_calendar_month < 0 || festival_calendar_month > 11) {
    return Status::InvalidArgument(
        "festival_calendar_month must be in [0, 11]");
  }
  return Status::OK();
}

Result<MarketData> MarketSimulator::Generate() const {
  GAIA_RETURN_NOT_OK(config_.Validate());
  const MarketConfig& cfg = config_;
  Rng rng(cfg.seed);

  const int total = cfg.total_months();
  const int extended = total + cfg.max_lead_months;
  const auto n = static_cast<int32_t>(cfg.num_shops);

  MarketData market;
  market.config = cfg;
  market.shops.resize(static_cast<size_t>(n));

  // --- industries: shared seasonal phase + macro factor ----------------------
  std::vector<double> industry_phase(static_cast<size_t>(cfg.num_industries));
  std::vector<std::vector<double>> industry_factor(
      static_cast<size_t>(cfg.num_industries));
  Rng industry_rng = rng.Split();
  for (int i = 0; i < cfg.num_industries; ++i) {
    industry_phase[static_cast<size_t>(i)] = industry_rng.Uniform(0.0, 12.0);
    industry_factor[static_cast<size_t>(i)] =
        SmoothFactor(extended, 0.85, &industry_rng);
  }

  // --- roles ----------------------------------------------------------------
  std::vector<int32_t> ids(static_cast<size_t>(n));
  std::iota(ids.begin(), ids.end(), 0);
  rng.Shuffle(&ids);
  const auto num_suppliers =
      static_cast<int32_t>(cfg.supplier_fraction * static_cast<double>(n));
  std::vector<int32_t> suppliers(ids.begin(), ids.begin() + num_suppliers);
  std::vector<int32_t> retailers(ids.begin() + num_suppliers, ids.end());

  for (int32_t v = 0; v < n; ++v) {
    Shop& shop = market.shops[static_cast<size_t>(v)];
    shop.id = v;
    shop.industry = static_cast<int>(rng.UniformInt(
        static_cast<uint32_t>(cfg.num_industries)));
    shop.region = static_cast<int>(rng.UniformInt(
        static_cast<uint32_t>(cfg.num_regions)));
  }
  for (int32_t s : suppliers) {
    market.shops[static_cast<size_t>(s)].is_supplier = true;
  }

  // --- retailer demand (extended so suppliers can look ahead) -----------------
  Rng demand_rng = rng.Split();
  std::vector<std::vector<double>> demand(static_cast<size_t>(n));
  for (int32_t r : retailers) {
    Shop& shop = market.shops[static_cast<size_t>(r)];
    const double scale =
        demand_rng.LogNormal(cfg.log_scale_mu, cfg.log_scale_sigma);
    const double phase = industry_phase[static_cast<size_t>(shop.industry)];
    const std::vector<double>& macro =
        industry_factor[static_cast<size_t>(shop.industry)];
    const double trend = demand_rng.Normal(0.0, 0.2);
    std::vector<double> series(static_cast<size_t>(extended));
    double shock = 0.0;
    for (int m = 0; m < extended; ++m) {
      const int cal = (cfg.start_calendar_month + m) % 12;
      const double season =
          cfg.seasonal_amplitude *
          std::sin(2.0 * kPi * (static_cast<double>(cal) + phase) / 12.0);
      const double festival =
          (cal == cfg.festival_calendar_month) ? cfg.festival_boost : 0.0;
      shock = 0.6 * shock + demand_rng.Normal(0.0, cfg.noise_level);
      const double level = 1.0 + season + festival + 0.3 * macro[static_cast<size_t>(m)] +
                           trend * static_cast<double>(m) /
                               static_cast<double>(total) +
                           shock;
      series[static_cast<size_t>(m)] = scale * std::max(level, 0.05);
    }
    demand[static_cast<size_t>(r)] = std::move(series);
  }

  // --- supply links & supplier series ------------------------------------------
  Rng supply_rng = rng.Split();
  std::vector<std::vector<double>> supplier_base(static_cast<size_t>(n));
  std::vector<std::vector<std::pair<int32_t, double>>> downstream(
      static_cast<size_t>(n));
  if (!suppliers.empty()) {
    // Group suppliers per industry so links are industry-coherent.
    std::vector<std::vector<int32_t>> suppliers_by_industry(
        static_cast<size_t>(cfg.num_industries));
    for (int32_t s : suppliers) {
      suppliers_by_industry[static_cast<size_t>(
                                market.shops[static_cast<size_t>(s)].industry)]
          .push_back(s);
    }
    std::vector<int> supplier_lead(static_cast<size_t>(n), 0);
    for (int32_t s : suppliers) {
      supplier_lead[static_cast<size_t>(s)] =
          cfg.min_lead_months +
          static_cast<int>(supply_rng.UniformInt(static_cast<uint32_t>(
              cfg.max_lead_months - cfg.min_lead_months + 1)));
    }
    for (int32_t r : retailers) {
      const Shop& shop = market.shops[static_cast<size_t>(r)];
      std::vector<int32_t>& pool =
          suppliers_by_industry[static_cast<size_t>(shop.industry)];
      std::vector<int32_t>* source = &pool;
      if (source->empty()) source = &suppliers;  // fall back to any supplier
      const int num_links =
          1 + static_cast<int>(supply_rng.UniformInt(static_cast<uint32_t>(
              cfg.max_suppliers_per_retailer)));
      for (int l = 0; l < num_links; ++l) {
        const int32_t s = (*source)[supply_rng.UniformInt(
            static_cast<uint32_t>(source->size()))];
        const double share = supply_rng.Uniform(0.2, 0.6);
        downstream[static_cast<size_t>(s)].emplace_back(r, share);
        market.supply_links.push_back(
            SupplyLink{s, r, supplier_lead[static_cast<size_t>(s)]});
      }
    }
    for (int32_t s : suppliers) {
      const int lead = supplier_lead[static_cast<size_t>(s)];
      std::vector<double> series(static_cast<size_t>(extended), 0.0);
      if (downstream[static_cast<size_t>(s)].empty()) {
        // Orphan supplier: independent base series.
        const double scale =
            supply_rng.LogNormal(cfg.log_scale_mu, cfg.log_scale_sigma);
        for (int m = 0; m < extended; ++m) {
          series[static_cast<size_t>(m)] =
              scale * std::max(1.0 + supply_rng.Normal(0.0, cfg.noise_level),
                               0.05);
        }
      } else {
        // Wholesale demand aggregates downstream retail demand `lead`
        // months ahead — this is the planted inter temporal shift.
        for (int m = 0; m < extended; ++m) {
          double acc = 0.0;
          for (const auto& [r, share] : downstream[static_cast<size_t>(s)]) {
            const int future = std::min(m + lead, extended - 1);
            acc += share * demand[static_cast<size_t>(r)]
                               [static_cast<size_t>(future)];
          }
          const double obs_noise =
              1.0 + supply_rng.Normal(0.0, cfg.noise_level * 0.5);
          series[static_cast<size_t>(m)] = std::max(acc * obs_noise, 0.0);
        }
      }
      supplier_base[static_cast<size_t>(s)] = std::move(series);
    }
  }

  // --- owner clusters -----------------------------------------------------------
  Rng owner_rng = rng.Split();
  {
    std::vector<int32_t> pool(ids);
    owner_rng.Shuffle(&pool);
    const auto budget =
        static_cast<size_t>(cfg.owner_cluster_fraction * static_cast<double>(n));
    size_t used = 0;
    while (used + 2 <= budget) {
      const size_t cluster_size =
          2 + owner_rng.UniformInt(3);  // 2..4 shops per owner
      const size_t take = std::min(cluster_size, budget - used);
      if (take < 2) break;
      std::vector<int32_t> cluster(pool.begin() + static_cast<int64_t>(used),
                                   pool.begin() +
                                       static_cast<int64_t>(used + take));
      market.owner_clusters.push_back(std::move(cluster));
      used += take;
    }
  }

  // --- assemble final GMV with owner factors, ages, auxiliaries ------------------
  Rng age_rng = rng.Split();
  std::vector<double> owner_multiplier_storage;
  std::vector<std::vector<double>> owner_factor(market.owner_clusters.size());
  for (size_t c = 0; c < market.owner_clusters.size(); ++c) {
    owner_factor[c] = SmoothFactor(extended, 0.9, &owner_rng);
  }
  std::vector<int> owner_of(static_cast<size_t>(n), -1);
  for (size_t c = 0; c < market.owner_clusters.size(); ++c) {
    for (int32_t v : market.owner_clusters[c]) {
      owner_of[static_cast<size_t>(v)] = static_cast<int>(c);
    }
  }

  for (int32_t v = 0; v < n; ++v) {
    Shop& shop = market.shops[static_cast<size_t>(v)];
    const std::vector<double>& base = shop.is_supplier
                                          ? supplier_base[static_cast<size_t>(v)]
                                          : demand[static_cast<size_t>(v)];
    GAIA_CHECK(!base.empty());

    // Heavy-tailed observed-history length: most shops are young.
    const double raw_age =
        age_rng.Pareto(cfg.age_pareto_alpha,
                       static_cast<double>(cfg.min_age_months));
    shop.age_months = std::min(cfg.history_months,
                               std::max(cfg.min_age_months,
                                        static_cast<int>(std::lround(raw_age))));
    shop.birth_month = cfg.history_months - shop.age_months;

    shop.gmv.assign(static_cast<size_t>(total), 0.0);
    shop.customers.assign(static_cast<size_t>(total), 0.0);
    shop.orders.assign(static_cast<size_t>(total), 0.0);
    const double basket = 80.0 + 40.0 * age_rng.Uniform();
    for (int m = shop.birth_month; m < total; ++m) {
      double value = base[static_cast<size_t>(m)];
      const int cluster = owner_of[static_cast<size_t>(v)];
      if (cluster >= 0) {
        value *= 1.0 + 0.3 * owner_factor[static_cast<size_t>(cluster)]
                                         [static_cast<size_t>(m)];
      }
      value = std::max(value, 0.0);
      shop.gmv[static_cast<size_t>(m)] = value;
      const double orders = value / basket *
                            (1.0 + age_rng.Normal(0.0, 0.05));
      shop.orders[static_cast<size_t>(m)] = std::max(orders, 0.0);
      shop.customers[static_cast<size_t>(m)] =
          std::max(orders * age_rng.Uniform(0.6, 0.95), 0.0);
    }
  }
  (void)owner_multiplier_storage;

  // --- e-seller graph -------------------------------------------------------------
  graph::GraphBuilder builder(n);
  for (const SupplyLink& link : market.supply_links) {
    builder.AddSupplyChain(link.supplier, link.retailer);
  }
  for (const auto& cluster : market.owner_clusters) {
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        builder.AddSameOwner(cluster[i], cluster[j]);
      }
    }
  }
  Rng noise_rng = rng.Split();
  const auto noise_edges = static_cast<int64_t>(
      cfg.noise_edge_fraction * static_cast<double>(builder.num_pending_edges()));
  for (int64_t e = 0; e < noise_edges; ++e) {
    const auto a = static_cast<int32_t>(noise_rng.UniformInt(
        static_cast<uint32_t>(n)));
    const auto b = static_cast<int32_t>(noise_rng.UniformInt(
        static_cast<uint32_t>(n)));
    if (a == b) continue;
    builder.AddSameOwner(a, b);
  }
  Result<graph::EsellerGraph> graph = builder.Build();
  if (!graph.ok()) return graph.status();
  market.graph = std::move(graph).value();

  if (!regime_.empty()) {
    GAIA_RETURN_NOT_OK(regime_.ApplyPostGeneration(&market));
  }
  return market;
}

}  // namespace gaia::data
