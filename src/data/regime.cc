#include "data/regime.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "data/market_simulator.h"
#include "util/rng.h"

namespace gaia::data {

namespace {

const char* KindName(RegimeEventKind kind) {
  switch (kind) {
    case RegimeEventKind::kDemandShock:
      return "demand_shock";
    case RegimeEventKind::kSupplierFailure:
      return "supplier_failure";
    case RegimeEventKind::kFestivalShift:
      return "festival_shift";
    case RegimeEventKind::kColdstartFlood:
      return "coldstart_flood";
  }
  return "unknown";
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

Status ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty() ||
      !std::isfinite(*out)) {
    return Status::InvalidArgument("regime: bad number '" + text + "'");
  }
  return Status::OK();
}

Status ParseInt(const std::string& text, int* out) {
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || text.empty()) {
    return Status::InvalidArgument("regime: bad integer '" + text + "'");
  }
  *out = static_cast<int>(value);
  return Status::OK();
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

/// Picks `count` distinct elements from `pool` with a seeded shuffle; the
/// draw order (not the pool order) decides who is hit, so the same seed
/// always shocks the same shops.
std::vector<int32_t> PickSubset(const std::vector<int32_t>& pool,
                                size_t count, Rng* rng) {
  std::vector<int32_t> shuffled(pool);
  rng->Shuffle(&shuffled);
  count = std::min(count, shuffled.size());
  shuffled.resize(count);
  return shuffled;
}

void ScaleFromMonth(Shop* shop, int month, double factor) {
  const auto total = static_cast<int>(shop->gmv.size());
  for (int m = std::max(month, 0); m < total; ++m) {
    const auto i = static_cast<size_t>(m);
    shop->gmv[i] = std::max(shop->gmv[i] * factor, 0.0);
    shop->orders[i] = std::max(shop->orders[i] * factor, 0.0);
    shop->customers[i] = std::max(shop->customers[i] * factor, 0.0);
  }
}

}  // namespace

Result<RegimeScript> RegimeScript::Parse(const std::string& spec) {
  RegimeScript script;
  for (const std::string& raw : SplitOn(spec, ';')) {
    if (raw.empty()) continue;
    const size_t colon = raw.find(':');
    const std::string head = raw.substr(0, colon);
    const std::string tail =
        colon == std::string::npos ? "" : raw.substr(colon + 1);
    if (head == "seed") {
      char* end = nullptr;
      script.seed_ = std::strtoull(tail.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || tail.empty()) {
        return Status::InvalidArgument("regime: bad seed '" + tail + "'");
      }
      continue;
    }
    RegimeEvent event;
    if (head == "demand_shock") {
      event.kind = RegimeEventKind::kDemandShock;
    } else if (head == "supplier_failure") {
      event.kind = RegimeEventKind::kSupplierFailure;
    } else if (head == "festival_shift") {
      event.kind = RegimeEventKind::kFestivalShift;
    } else if (head == "coldstart_flood") {
      event.kind = RegimeEventKind::kColdstartFlood;
    } else {
      return Status::InvalidArgument("regime: unknown event '" + head + "'");
    }
    for (const std::string& pair : SplitOn(tail, ',')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("regime: expected key=value, got '" +
                                       pair + "'");
      }
      const std::string key = pair.substr(0, eq);
      const std::string value = pair.substr(eq + 1);
      if (key == "month") {
        GAIA_RETURN_NOT_OK(ParseInt(value, &event.month));
      } else if (key == "magnitude") {
        GAIA_RETURN_NOT_OK(ParseDouble(value, &event.magnitude));
      } else if (key == "fraction") {
        GAIA_RETURN_NOT_OK(ParseDouble(value, &event.fraction));
      } else if (key == "delta") {
        GAIA_RETURN_NOT_OK(ParseInt(value, &event.delta));
      } else {
        return Status::InvalidArgument("regime: unknown key '" + key + "'");
      }
    }
    if (event.kind == RegimeEventKind::kDemandShock &&
        event.magnitude <= -1.0) {
      return Status::InvalidArgument(
          "regime: demand_shock magnitude must be > -1");
    }
    if (event.kind == RegimeEventKind::kSupplierFailure ||
        event.kind == RegimeEventKind::kColdstartFlood) {
      if (event.fraction < 0.0 || event.fraction > 1.0) {
        return Status::InvalidArgument("regime: fraction must be in [0, 1]");
      }
    }
    if (event.kind == RegimeEventKind::kSupplierFailure &&
        (event.magnitude < 0.0 || event.magnitude > 1.0)) {
      return Status::InvalidArgument(
          "regime: supplier_failure magnitude must be in [0, 1]");
    }
    script.events_.push_back(event);
  }
  return script;
}

RegimeScript RegimeScript::Random(uint64_t seed, int total_months) {
  RegimeScript script;
  script.seed_ = seed;
  Rng rng(seed);
  const int num_events = 1 + static_cast<int>(rng.UniformInt(3));
  const int last_month = std::max(total_months - 1, 1);
  for (int e = 0; e < num_events; ++e) {
    RegimeEvent event;
    switch (rng.UniformInt(4)) {
      case 0:
        event.kind = RegimeEventKind::kDemandShock;
        event.month = static_cast<int>(
            rng.UniformInt(static_cast<uint32_t>(last_month)));
        // In (-0.6, 0.8): crashes and booms, never a full wipe-out.
        event.magnitude = rng.Uniform(-0.6, 0.8);
        break;
      case 1:
        event.kind = RegimeEventKind::kSupplierFailure;
        event.month = static_cast<int>(
            rng.UniformInt(static_cast<uint32_t>(last_month)));
        event.fraction = rng.Uniform(0.1, 0.5);
        event.magnitude = rng.Uniform(0.3, 1.0);
        break;
      case 2:
        event.kind = RegimeEventKind::kFestivalShift;
        event.delta = 1 + static_cast<int>(rng.UniformInt(3));
        if (rng.Bernoulli(0.5)) event.delta = -event.delta;
        break;
      default:
        event.kind = RegimeEventKind::kColdstartFlood;
        event.month = 1 + static_cast<int>(
            rng.UniformInt(static_cast<uint32_t>(last_month)));
        event.fraction = rng.Uniform(0.05, 0.3);
        break;
    }
    script.events_.push_back(event);
  }
  return script;
}

std::string RegimeScript::ToString() const {
  std::string out = "seed:" + std::to_string(seed_);
  for (const RegimeEvent& event : events_) {
    out += ';';
    out += KindName(event.kind);
    out += ':';
    switch (event.kind) {
      case RegimeEventKind::kDemandShock:
        out += "month=" + std::to_string(event.month) +
               ",magnitude=" + FormatDouble(event.magnitude);
        break;
      case RegimeEventKind::kSupplierFailure:
        out += "month=" + std::to_string(event.month) +
               ",fraction=" + FormatDouble(event.fraction) +
               ",magnitude=" + FormatDouble(event.magnitude);
        break;
      case RegimeEventKind::kFestivalShift:
        out += "delta=" + std::to_string(event.delta);
        break;
      case RegimeEventKind::kColdstartFlood:
        out += "month=" + std::to_string(event.month) +
               ",fraction=" + FormatDouble(event.fraction);
        break;
    }
  }
  return out;
}

void RegimeScript::ApplyPreGeneration(MarketConfig* config) const {
  for (const RegimeEvent& event : events_) {
    if (event.kind != RegimeEventKind::kFestivalShift) continue;
    config->festival_calendar_month =
        ((config->festival_calendar_month + event.delta) % 12 + 12) % 12;
  }
}

Status RegimeScript::ApplyPostGeneration(MarketData* market) const {
  if (empty()) return Status::OK();
  GAIA_CHECK(market != nullptr);
  const int total = market->config.total_months();
  const auto n = static_cast<int32_t>(market->shops.size());
  // One child stream per event, split in event order, so adding an event to
  // the end of a script never changes which shops earlier events hit.
  Rng root(seed_);
  for (const RegimeEvent& event : events_) {
    Rng rng = root.Split();
    const int month = std::clamp(event.month, 0, std::max(total - 1, 0));
    switch (event.kind) {
      case RegimeEventKind::kDemandShock: {
        // Market-wide step: every shop's volume scales by (1 + magnitude)
        // from the shock month — exactly linear, so tests can pin ratios.
        const double factor = 1.0 + event.magnitude;
        for (Shop& shop : market->shops) {
          ScaleFromMonth(&shop, month, factor);
        }
        break;
      }
      case RegimeEventKind::kSupplierFailure: {
        std::vector<int32_t> suppliers;
        for (const Shop& shop : market->shops) {
          if (shop.is_supplier) suppliers.push_back(shop.id);
        }
        const auto count = static_cast<size_t>(std::ceil(
            event.fraction * static_cast<double>(suppliers.size())));
        const std::vector<int32_t> failed =
            PickSubset(suppliers, count, &rng);
        // Per-shop survival factor; a shop hit along several paths keeps the
        // worst one. The loss attenuates by half per supply-chain hop.
        std::vector<double> factor(static_cast<size_t>(n), 1.0);
        for (int32_t s : failed) {
          factor[static_cast<size_t>(s)] = std::min(
              factor[static_cast<size_t>(s)], 1.0 - event.magnitude);
        }
        for (const SupplyLink& link : market->supply_links) {
          if (factor[static_cast<size_t>(link.supplier)] < 1.0 &&
              std::find(failed.begin(), failed.end(), link.supplier) !=
                  failed.end()) {
            factor[static_cast<size_t>(link.retailer)] =
                std::min(factor[static_cast<size_t>(link.retailer)],
                         1.0 - event.magnitude * 0.5);
          }
        }
        for (int32_t v = 0; v < n; ++v) {
          if (factor[static_cast<size_t>(v)] < 1.0) {
            ScaleFromMonth(&market->shops[static_cast<size_t>(v)], month,
                           factor[static_cast<size_t>(v)]);
          }
        }
        break;
      }
      case RegimeEventKind::kFestivalShift:
        // Handled in ApplyPreGeneration; nothing to do on the series. The
        // stream split above still happens so event order stays stable.
        break;
      case RegimeEventKind::kColdstartFlood: {
        std::vector<int32_t> all(static_cast<size_t>(n));
        std::iota(all.begin(), all.end(), 0);
        const auto count = static_cast<size_t>(std::floor(
            event.fraction * static_cast<double>(n)));
        // Re-birth at `month`, capped one month before the forecast origin
        // so every shop keeps at least one observed month of history.
        const int birth =
            std::clamp(month, 0, market->config.history_months - 1);
        for (int32_t v : PickSubset(all, count, &rng)) {
          Shop& shop = market->shops[static_cast<size_t>(v)];
          if (shop.birth_month >= birth) continue;  // already younger
          shop.birth_month = birth;
          shop.age_months = market->config.history_months - birth;
          for (int m = 0; m < birth; ++m) {
            shop.gmv[static_cast<size_t>(m)] = 0.0;
            shop.orders[static_cast<size_t>(m)] = 0.0;
            shop.customers[static_cast<size_t>(m)] = 0.0;
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

}  // namespace gaia::data
