#ifndef GAIA_DATA_REGIME_H_
#define GAIA_DATA_REGIME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gaia::data {

struct MarketConfig;
struct MarketData;

/// \brief Kinds of adversarial market events a regime can compose.
enum class RegimeEventKind {
  /// Market-wide multiplicative demand step from a given month onward
  /// (pandemic-style shock; magnitude -0.5 halves demand, +0.5 adds 50%).
  kDemandShock,
  /// A seeded fraction of suppliers lose `magnitude` of their volume from a
  /// given month; the loss cascades one supply-chain hop downstream at half
  /// strength (retailers sourcing from a failed supplier).
  kSupplierFailure,
  /// Moves the festival spike by `delta` calendar months (applied before
  /// generation; the simulator plants the spike at the shifted month).
  kFestivalShift,
  /// A seeded fraction of shops are re-born at a given month: their history
  /// before it is erased, creating a flood of cold-start shops.
  kColdstartFlood,
};

/// \brief One scripted event. Fields not used by a kind stay at defaults.
struct RegimeEvent {
  RegimeEventKind kind = RegimeEventKind::kDemandShock;
  /// Month index into [0, total_months) at which the event takes effect.
  int month = 0;
  /// Shock strength; see the kind's docs for its sign convention.
  double magnitude = 0.0;
  /// Fraction of the affected population (suppliers / all shops) hit.
  double fraction = 0.0;
  /// Calendar-month displacement for kFestivalShift.
  int delta = 0;
};

/// \brief A seeded, deterministic script of adversarial market regimes.
///
/// A script is replayable from its spec string: `ToString()` round-trips
/// through `Parse()` bit-exactly (doubles are printed with %.17g), and every
/// random choice (which suppliers fail, which shops flood) flows through a
/// PCG32 stream seeded from the script's own seed — so the same spec applied
/// to the same market yields the same shocked market on any machine.
///
/// Spec grammar (clauses separated by ';', key=value pairs by ','):
///
///   seed:123;
///   demand_shock:month=8,magnitude=-0.5;
///   supplier_failure:month=6,fraction=0.25,magnitude=0.8;
///   festival_shift:delta=1;
///   coldstart_flood:month=10,fraction=0.2
///
/// An empty script is an exact no-op: applying it leaves the market bitwise
/// identical to a plain `MarketSimulator` run.
class RegimeScript {
 public:
  RegimeScript() = default;

  /// Parses a spec string. Unknown clause/key names and malformed numbers
  /// are InvalidArgument. The empty string parses to an empty script.
  static Result<RegimeScript> Parse(const std::string& spec);

  /// Draws a random 1–3 event script, replayable from the seed. Used by the
  /// chaos CI leg: any seed must produce a spec the full pipeline survives.
  static RegimeScript Random(uint64_t seed, int total_months);

  /// Canonical spec string; `Parse(ToString())` reproduces this script.
  std::string ToString() const;

  bool empty() const { return events_.empty(); }
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  const std::vector<RegimeEvent>& events() const { return events_; }
  void add_event(const RegimeEvent& event) { events_.push_back(event); }

  /// Config-level events (festival shift) — call before generation.
  void ApplyPreGeneration(MarketConfig* config) const;

  /// Series-level events — call on a fully generated market. Deterministic
  /// given (script, market); a no-op for an empty script.
  Status ApplyPostGeneration(MarketData* market) const;

 private:
  uint64_t seed_ = 0;
  std::vector<RegimeEvent> events_;
};

}  // namespace gaia::data

#endif  // GAIA_DATA_REGIME_H_
