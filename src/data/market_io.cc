#include "data/market_io.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/eseller_graph.h"
#include "util/check.h"
#include "util/fault_injector.h"

namespace gaia::data {

namespace {

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << contents;
  if (!out) return Status::IoError("short write: " + path);
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, size_t expected_fields) {
  // Fault site "market.read": models a flaky ingestion mount / object store;
  // transient kinds pair with LoadMarketCsvRetry's backoff.
  util::FaultInjector& faults = util::FaultInjector::Global();
  if (faults.enabled()) {
    if (auto fault = faults.Sample("market.read")) {
      return util::FaultStatus(*fault, "market.read");
    }
  }
  std::ifstream in(path);
  if (!in) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      return Status::NotFound("missing market file: " + path);
    }
    return Status::IoError("cannot open for read: " + path);
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (first) {  // header
      first = false;
      continue;
    }
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != expected_fields) {
      return Status::InvalidArgument(
          path + ": expected " + std::to_string(expected_fields) +
          " fields, got " + std::to_string(fields.size()) + " in: " + line);
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

Result<long long> ParseInt(const std::string& s, const std::string& what) {
  try {
    size_t pos = 0;
    long long v = std::stoll(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad integer for " + what + ": " + s);
  }
}

Result<double> ParseDouble(const std::string& s, const std::string& what) {
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    // "nan"/"inf" parse fine through stod but poison every downstream
    // normalization; reject them at the ingestion boundary.
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite value for " + what + ": " + s);
    }
    return v;
  } catch (...) {
    return Status::InvalidArgument("bad number for " + what + ": " + s);
  }
}

}  // namespace

Status SaveMarketCsv(const MarketData& market, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create market directory " + dir + ": " +
                           ec.message());
  }
  const MarketConfig& cfg = market.config;
  {
    std::ostringstream os;
    os << "num_shops,num_industries,num_regions,history_months,"
          "horizon_months,start_calendar_month\n";
    os << cfg.num_shops << ',' << cfg.num_industries << ',' << cfg.num_regions
       << ',' << cfg.history_months << ',' << cfg.horizon_months << ','
       << cfg.start_calendar_month << '\n';
    GAIA_RETURN_NOT_OK(WriteFile(dir + "/meta.csv", os.str()));
  }
  {
    std::ostringstream os;
    os << "id,industry,region,is_supplier,age_months,birth_month\n";
    for (const Shop& shop : market.shops) {
      os << shop.id << ',' << shop.industry << ',' << shop.region << ','
         << (shop.is_supplier ? 1 : 0) << ',' << shop.age_months << ','
         << shop.birth_month << '\n';
    }
    GAIA_RETURN_NOT_OK(WriteFile(dir + "/shops.csv", os.str()));
  }
  {
    std::ostringstream os;
    os.precision(17);  // round-trip exact doubles
    os << "shop,month,gmv,customers,orders\n";
    for (const Shop& shop : market.shops) {
      for (size_t m = 0; m < shop.gmv.size(); ++m) {
        os << shop.id << ',' << m << ',' << shop.gmv[m] << ','
           << shop.customers[m] << ',' << shop.orders[m] << '\n';
      }
    }
    GAIA_RETURN_NOT_OK(WriteFile(dir + "/series.csv", os.str()));
  }
  {
    std::ostringstream os;
    os << "src,dst,type\n";
    for (int32_t u = 0; u < market.graph.num_nodes(); ++u) {
      for (const graph::Neighbor& nb : market.graph.InNeighbors(u)) {
        os << nb.node << ',' << u << ','
           << static_cast<int>(nb.type) << '\n';
      }
    }
    GAIA_RETURN_NOT_OK(WriteFile(dir + "/edges.csv", os.str()));
  }
  return Status::OK();
}

Result<MarketData> LoadMarketCsv(const std::string& dir) {
  MarketData market;
  // --- meta -----------------------------------------------------------------
  {
    auto rows = ReadCsv(dir + "/meta.csv", 6);
    if (!rows.ok()) return rows.status();
    if (rows.value().size() != 1) {
      return Status::InvalidArgument("meta.csv must contain exactly one row");
    }
    const auto& r = rows.value()[0];
    MarketConfig& cfg = market.config;
    auto shops = ParseInt(r[0], "num_shops");
    auto industries = ParseInt(r[1], "num_industries");
    auto regions = ParseInt(r[2], "num_regions");
    auto history = ParseInt(r[3], "history_months");
    auto horizon = ParseInt(r[4], "horizon_months");
    auto start = ParseInt(r[5], "start_calendar_month");
    for (const auto* p : {&shops, &industries, &regions, &history, &horizon,
                          &start}) {
      if (!p->ok()) return p->status();
    }
    cfg.num_shops = shops.value();
    cfg.num_industries = static_cast<int>(industries.value());
    cfg.num_regions = static_cast<int>(regions.value());
    cfg.history_months = static_cast<int>(history.value());
    cfg.horizon_months = static_cast<int>(horizon.value());
    cfg.start_calendar_month = static_cast<int>(start.value());
  }
  const MarketConfig& cfg = market.config;
  const int total = cfg.total_months();
  if (cfg.num_shops <= 0 || cfg.history_months <= 0 ||
      cfg.horizon_months <= 0) {
    return Status::InvalidArgument("meta.csv has non-positive dimensions");
  }

  // --- shops ----------------------------------------------------------------
  market.shops.assign(static_cast<size_t>(cfg.num_shops), Shop{});
  std::vector<bool> seen(static_cast<size_t>(cfg.num_shops), false);
  {
    auto rows = ReadCsv(dir + "/shops.csv", 6);
    if (!rows.ok()) return rows.status();
    if (static_cast<int64_t>(rows.value().size()) != cfg.num_shops) {
      return Status::InvalidArgument("shops.csv row count != num_shops");
    }
    for (const auto& r : rows.value()) {
      auto id = ParseInt(r[0], "shop id");
      if (!id.ok()) return id.status();
      if (id.value() < 0 || id.value() >= cfg.num_shops) {
        return Status::OutOfRange("shop id out of range: " + r[0]);
      }
      if (seen[static_cast<size_t>(id.value())]) {
        return Status::AlreadyExists("duplicate shop id: " + r[0]);
      }
      seen[static_cast<size_t>(id.value())] = true;
      Shop& shop = market.shops[static_cast<size_t>(id.value())];
      shop.id = static_cast<int32_t>(id.value());
      auto industry = ParseInt(r[1], "industry");
      auto region = ParseInt(r[2], "region");
      auto supplier = ParseInt(r[3], "is_supplier");
      auto age = ParseInt(r[4], "age_months");
      auto birth = ParseInt(r[5], "birth_month");
      for (const auto* p : {&industry, &region, &supplier, &age, &birth}) {
        if (!p->ok()) return p->status();
      }
      shop.industry = static_cast<int>(industry.value());
      shop.region = static_cast<int>(region.value());
      shop.is_supplier = supplier.value() != 0;
      shop.age_months = static_cast<int>(age.value());
      shop.birth_month = static_cast<int>(birth.value());
      if (shop.industry < 0 || shop.industry >= cfg.num_industries ||
          shop.region < 0 || shop.region >= cfg.num_regions) {
        return Status::OutOfRange("industry/region out of range for shop " +
                                  r[0]);
      }
      shop.gmv.assign(static_cast<size_t>(total), 0.0);
      shop.customers.assign(static_cast<size_t>(total), 0.0);
      shop.orders.assign(static_cast<size_t>(total), 0.0);
    }
  }

  // --- series ----------------------------------------------------------------
  {
    GAIA_ASSIGN_OR_RETURN(auto rows, ReadCsv(dir + "/series.csv", 5));
    std::vector<bool> seen_cell(
        static_cast<size_t>(cfg.num_shops) * static_cast<size_t>(total),
        false);
    for (const auto& r : rows) {
      auto shop_id = ParseInt(r[0], "series shop id");
      auto month = ParseInt(r[1], "series month");
      auto gmv = ParseDouble(r[2], "gmv");
      auto customers = ParseDouble(r[3], "customers");
      auto orders = ParseDouble(r[4], "orders");
      if (!shop_id.ok()) return shop_id.status();
      if (!month.ok()) return month.status();
      for (const auto* p : {&gmv, &customers, &orders}) {
        if (!p->ok()) return p->status();
      }
      if (shop_id.value() < 0 || shop_id.value() >= cfg.num_shops) {
        return Status::OutOfRange("series shop id out of range: " + r[0]);
      }
      if (month.value() < 0 || month.value() >= total) {
        return Status::OutOfRange("series month out of range: " + r[1]);
      }
      const size_t cell = static_cast<size_t>(shop_id.value()) *
                              static_cast<size_t>(total) +
                          static_cast<size_t>(month.value());
      if (seen_cell[cell]) {
        return Status::AlreadyExists("duplicate series row for shop " + r[0] +
                                     " month " + r[1]);
      }
      seen_cell[cell] = true;
      Shop& shop = market.shops[static_cast<size_t>(shop_id.value())];
      shop.gmv[static_cast<size_t>(month.value())] = gmv.value();
      shop.customers[static_cast<size_t>(month.value())] = customers.value();
      shop.orders[static_cast<size_t>(month.value())] = orders.value();
    }
  }

  // --- edges -----------------------------------------------------------------
  {
    GAIA_ASSIGN_OR_RETURN(auto rows, ReadCsv(dir + "/edges.csv", 3));
    std::vector<graph::Edge> edges;
    edges.reserve(rows.size());
    for (const auto& r : rows) {
      auto src = ParseInt(r[0], "edge src");
      auto dst = ParseInt(r[1], "edge dst");
      auto type = ParseInt(r[2], "edge type");
      if (!src.ok()) return src.status();
      if (!dst.ok()) return dst.status();
      if (!type.ok()) return type.status();
      if (type.value() != 0 && type.value() != 1) {
        return Status::InvalidArgument("edge type must be 0 or 1: " + r[2]);
      }
      edges.push_back(graph::Edge{
          static_cast<int32_t>(src.value()), static_cast<int32_t>(dst.value()),
          static_cast<graph::EdgeType>(type.value())});
    }
    GAIA_ASSIGN_OR_RETURN(market.graph,
                          graph::EsellerGraph::Create(cfg.num_shops, edges));
  }
  return market;
}

Result<MarketData> LoadMarketCsvRetry(const std::string& dir,
                                      const util::RetryPolicy& policy) {
  return util::RetryResult<MarketData>(policy,
                                       [&] { return LoadMarketCsv(dir); });
}

}  // namespace gaia::data
