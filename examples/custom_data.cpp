// Custom data: shows the ingestion path for users with their own GMV data.
// A market is exported to the CSV schema (meta/shops/series/edges), edited
// the way an external pipeline would produce it, loaded back, and fed
// through the standard dataset -> model -> evaluation flow.
//
//   $ ./build/examples/custom_data

#include <cstdlib>
#include <iostream>

#include "util/check.h"
#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_io.h"
#include "data/market_simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace gaia;
  const std::string dir = "/tmp/gaia_custom_data_example";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

  // In a real deployment these four CSVs come from your own data warehouse;
  // here we bootstrap them from the simulator so the example is runnable.
  data::MarketConfig cfg;
  cfg.num_shops = 120;
  cfg.seed = 42;
  auto market = data::MarketSimulator(cfg).Generate();
  GAIA_CHECK(market.ok());
  GAIA_CHECK(data::SaveMarketCsv(market.value(), dir).ok());
  std::cout << "Wrote market CSVs to " << dir
            << " (meta.csv, shops.csv, series.csv, edges.csv)\n";

  // --- from here on: exactly what a user with custom data would run -------
  auto loaded = data::LoadMarketCsv(dir);
  if (!loaded.ok()) {
    std::cerr << "load failed: " << loaded.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Loaded market: " << loaded.value().graph.ToString() << "\n";

  auto dataset =
      data::ForecastDataset::Create(loaded.value(), data::DatasetOptions{});
  GAIA_CHECK(dataset.ok());

  core::GaiaConfig model_cfg;
  model_cfg.channels = 16;
  auto model = core::GaiaModel::Create(
      model_cfg, dataset.value().history_len(), dataset.value().horizon(),
      dataset.value().temporal_dim(), dataset.value().static_dim());
  GAIA_CHECK(model.ok());

  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 100;
  core::Trainer(train_cfg).Fit(model.value().get(), dataset.value());

  auto report = core::Evaluator::Evaluate(
      model.value().get(), dataset.value(), dataset.value().test_nodes());
  std::cout << "Held-out metrics on the loaded market: MAE "
            << TablePrinter::FormatCount(report.overall.mae) << ", RMSE "
            << TablePrinter::FormatCount(report.overall.rmse) << ", MAPE "
            << TablePrinter::FormatDouble(report.overall.mape, 4) << "\n";
  std::system(("rm -rf " + dir).c_str());
  return 0;
}
