// New-shop cold start: the *temporal deficiency* problem (paper Fig. 1a and
// Fig. 3). For shops with very short GMV histories, a pure time-series model
// has almost nothing to work with; Gaia borrows signal from graph
// neighbours. This example trains Gaia and LogTrans and zooms into the
// youngest shops of the test split.
//
//   $ ./build/examples/new_shop_coldstart

#include <algorithm>
#include <iostream>

#include "util/check.h"
#include "baselines/arima_forecaster.h"
#include "baselines/logtrans.h"
#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/market_simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace gaia;

  data::MarketConfig cfg;
  cfg.num_shops = 150;
  cfg.age_pareto_alpha = 1.0;  // even more young shops than default
  cfg.seed = 33;
  auto market = data::MarketSimulator(cfg).Generate();
  GAIA_CHECK(market.ok());
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  GAIA_CHECK(dataset.ok());
  const data::ForecastDataset& ds = dataset.value();

  // Count the deficiency.
  int young = 0;
  for (int32_t v = 0; v < ds.num_nodes(); ++v) {
    if (ds.series_length(v) < core::Evaluator::kNewShopThreshold) ++young;
  }
  std::cout << young << " of " << ds.num_nodes()
            << " shops have fewer than 10 observed months.\n\n";

  // Train both models with the same budget.
  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 80;

  core::GaiaConfig gaia_cfg;
  gaia_cfg.channels = 16;
  auto gaia = core::GaiaModel::Create(gaia_cfg, ds.history_len(),
                                      ds.horizon(), ds.temporal_dim(),
                                      ds.static_dim());
  GAIA_CHECK(gaia.ok());
  core::Trainer(train_cfg).Fit(gaia.value().get(), ds);

  baselines::LogTransConfig lt_cfg;
  auto logtrans = std::make_unique<baselines::LogTrans>(
      lt_cfg, ds.history_len(), ds.horizon(), ds.temporal_dim(),
      ds.static_dim());
  core::Trainer(train_cfg).Fit(logtrans.get(), ds);

  auto gaia_report =
      core::Evaluator::Evaluate(gaia.value().get(), ds, ds.test_nodes());
  auto logtrans_report =
      core::Evaluator::Evaluate(logtrans.get(), ds, ds.test_nodes());
  baselines::ArimaForecaster arima;
  auto arima_report = arima.Evaluate(ds, ds.test_nodes());

  TablePrinter table({"Method", "New-shop MAE", "New-shop MAPE",
                      "Old-shop MAE", "Old-shop MAPE"});
  for (const auto& report :
       {arima_report, logtrans_report, gaia_report}) {
    table.AddRow({report.method,
                  TablePrinter::FormatCount(report.new_shop.mae),
                  TablePrinter::FormatDouble(report.new_shop.mape, 4),
                  TablePrinter::FormatCount(report.old_shop.mae),
                  TablePrinter::FormatDouble(report.old_shop.mape, 4)});
  }
  table.Print(std::cout);

  // Zoom into one very young shop.
  int32_t youngest = ds.test_nodes().front();
  for (int32_t v : ds.test_nodes()) {
    if (ds.series_length(v) < ds.series_length(youngest)) youngest = v;
  }
  std::cout << "\nYoungest test shop " << youngest << " ("
            << ds.series_length(youngest) << " months of history, "
            << ds.graph().InDegree(youngest) << " graph neighbours):\n";
  Rng rng(0);
  auto gaia_pred =
      gaia.value()->PredictNodes(ds, {youngest}, false, &rng);
  auto logtrans_pred = logtrans->PredictNodes(ds, {youngest}, false, &rng);
  for (int h = 0; h < ds.horizon(); ++h) {
    std::cout << "  month +" << h + 1 << ": actual "
              << TablePrinter::FormatCount(ds.ActualGmv(youngest, h))
              << " | Gaia "
              << TablePrinter::FormatCount(
                     ds.Denormalize(youngest, gaia_pred[0]->value.at(h)))
              << " | LogTrans "
              << TablePrinter::FormatCount(
                     ds.Denormalize(youngest, logtrans_pred[0]->value.at(h)))
              << "\n";
  }
  return 0;
}
