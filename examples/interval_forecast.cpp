// Interval forecasts: the probabilistic Gaia extension emits a Gaussian per
// forecast month, giving calibrated uncertainty bands — useful for the
// inventory / marketing-resource decisions that motivate GMV forecasting.
//
//   $ ./build/examples/interval_forecast

#include <iostream>

#include "util/check.h"
#include "core/probabilistic_gaia.h"
#include "core/trainer.h"
#include "data/market_simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace gaia;

  data::MarketConfig cfg;
  cfg.num_shops = 120;
  cfg.seed = 77;
  auto market = data::MarketSimulator(cfg).Generate();
  GAIA_CHECK(market.ok());
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  GAIA_CHECK(dataset.ok());
  const data::ForecastDataset& ds = dataset.value();

  core::ProbabilisticGaia::Config model_cfg;
  model_cfg.channels = 16;
  auto model = core::ProbabilisticGaia::Create(
      model_cfg, ds.history_len(), ds.horizon(), ds.temporal_dim(),
      ds.static_dim());
  GAIA_CHECK(model.ok());

  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 60;
  core::Trainer(train_cfg).Fit(model.value().get(), ds);

  // 2-sigma interval coverage on the test split.
  const auto& nodes = ds.test_nodes();
  auto dists = model.value()->PredictDistribution(ds, nodes);
  int covered = 0, total = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (int h = 0; h < ds.horizon(); ++h) {
      const double actual = ds.target(nodes[i]).at(h);
      const double lo = dists[i].mean.at(h) - 2.0 * dists[i].stddev.at(h);
      const double hi = dists[i].mean.at(h) + 2.0 * dists[i].stddev.at(h);
      covered += (actual >= lo && actual <= hi) ? 1 : 0;
      ++total;
    }
  }
  std::cout << "2-sigma interval coverage on " << total << " test months: "
            << TablePrinter::FormatDouble(100.0 * covered / total, 1)
            << "% (Gaussian nominal ~95%)\n\n";

  // Show bands for a few shops.
  TablePrinter table({"Shop", "Month", "Actual GMV", "Forecast", "Lower 2s",
                      "Upper 2s"});
  for (size_t i = 0; i < 3 && i < nodes.size(); ++i) {
    const int32_t shop = nodes[i];
    for (int h = 0; h < ds.horizon(); ++h) {
      const double scale = ds.scale(shop);
      table.AddRow(
          {std::to_string(shop), "+" + std::to_string(h + 1),
           TablePrinter::FormatCount(ds.ActualGmv(shop, h)),
           TablePrinter::FormatCount(dists[i].mean.at(h) * scale),
           TablePrinter::FormatCount(
               std::max(0.0, (dists[i].mean.at(h) -
                              2.0 * dists[i].stddev.at(h))) * scale),
           TablePrinter::FormatCount(
               (dists[i].mean.at(h) + 2.0 * dists[i].stddev.at(h)) * scale)});
    }
    if (i + 1 < 3) table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
