// Online serving: the hybrid offline/online deployment of paper §VI.
// The offline pipeline trains Gaia and publishes a checkpoint; the model
// server loads it and answers per-shop forecast requests in real time from
// each shop's ego-subgraph.
//
//   $ ./build/examples/online_serving

#include <cstdio>
#include <iostream>
#include <memory>

#include "util/check.h"
#include "data/market_simulator.h"
#include "serving/model_server.h"
#include "util/table_printer.h"

int main() {
  using namespace gaia;

  data::MarketConfig cfg;
  cfg.num_shops = 150;
  cfg.seed = 55;
  auto market = data::MarketSimulator(cfg).Generate();
  GAIA_CHECK(market.ok());
  auto created =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  GAIA_CHECK(created.ok());
  auto dataset = std::make_shared<data::ForecastDataset>(
      std::move(created).value());

  // --- offline: monthly scheduled training job ------------------------------
  const std::string checkpoint = "/tmp/gaia_example_checkpoint.bin";
  serving::OfflineTrainingPipeline::Config offline;
  offline.model.channels = 16;
  offline.train.max_epochs = 60;
  offline.checkpoint_path = checkpoint;
  serving::OfflineTrainingPipeline pipeline(offline);
  serving::OfflineTrainingPipeline::RunReport report;
  auto model = pipeline.Run(*dataset, &report);
  GAIA_CHECK(model.ok());
  std::cout << "[offline] trained " << report.train.epochs_run
            << " epochs, published " << checkpoint << "\n";

  // --- online: model server -----------------------------------------------
  serving::ServerConfig server_cfg;
  server_cfg.ego_hops = 2;
  server_cfg.max_fanout = 8;
  serving::ModelServer server(model.value(), dataset, server_cfg);
  GAIA_CHECK(server.LoadCheckpoint(checkpoint).ok());

  std::cout << "[online] serving 10 newcomer requests:\n";
  TablePrinter table({"Shop", "Ego nodes", "Latency (ms)", "Forecast m+1",
                      "Actual m+1"});
  for (int i = 0; i < 10; ++i) {
    const int32_t shop = dataset->test_nodes()[static_cast<size_t>(i)];
    auto prediction = server.Predict(shop);
    table.AddRow({std::to_string(shop),
                  std::to_string(prediction.ego_nodes),
                  TablePrinter::FormatDouble(prediction.latency_ms, 2),
                  TablePrinter::FormatCount(prediction.gmv[0]),
                  TablePrinter::FormatCount(dataset->ActualGmv(shop, 0))});
  }
  table.Print(std::cout);
  std::cout << "Mean request latency: "
            << TablePrinter::FormatDouble(
                   server.total_latency_ms() / server.total_requests(), 2)
            << " ms over " << server.total_requests() << " requests\n";
  std::remove(checkpoint.c_str());
  return 0;
}
