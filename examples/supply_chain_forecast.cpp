// Supply-chain scenario: shows the *inter temporal shift* — suppliers' GMV
// leads their downstream retailers — and verifies the trained model actually
// uses that channel via an inference-time edge knockout: train Gaia once on
// the e-seller graph, then serve the same weights with all edges removed.
// A model that exploits its neighbours must degrade when they vanish.
//
//   $ ./build/examples/supply_chain_forecast [seed]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "util/check.h"
#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "ts/metrics.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace gaia;

  // A market with *dedicated* supply channels: every retailer buys from a
  // single supplier, so each supplier's order book is a nearly clean
  // `lead`-months-early copy of its retailer's demand.
  data::MarketConfig cfg;
  cfg.num_shops = 200;
  cfg.supplier_fraction = 0.45;
  cfg.max_suppliers_per_retailer = 1;
  cfg.seed = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 21;
  auto market = data::MarketSimulator(cfg).Generate();
  GAIA_CHECK(market.ok());

  // 1. Verify the planted lead-lag on ground-truth links.
  std::cout << "Planted supply-chain lead-lag (ground truth links):\n";
  int shown = 0;
  for (const auto& link : market.value().supply_links) {
    const auto& s = market.value().shops[link.supplier];
    const auto& r = market.value().shops[link.retailer];
    if (s.birth_month > 2 || r.birth_month > 2) continue;
    ts::LagCorrelation best = ts::BestLagCorrelation(
        std::vector<double>(s.gmv.begin(), s.gmv.end()),
        std::vector<double>(r.gmv.begin(), r.gmv.end()), 6);
    std::cout << "  supplier " << link.supplier << " -> retailer "
              << link.retailer << ": planted lead " << link.lead_months
              << " months, measured best lag " << best.lag << " (corr "
              << TablePrinter::FormatDouble(best.correlation, 2) << ")\n";
    if (++shown == 5) break;
  }

  // 2. Train Gaia on the full e-seller graph.
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  GAIA_CHECK(dataset.ok());
  core::GaiaConfig model_cfg;
  model_cfg.channels = 32;
  auto model = core::GaiaModel::Create(
      model_cfg, dataset.value().history_len(), dataset.value().horizon(),
      dataset.value().temporal_dim(), dataset.value().static_dim());
  GAIA_CHECK(model.ok());
  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 120;
  std::cout << "\nTraining Gaia on the supply-chain graph...\n";
  core::Trainer(train_cfg).Fit(model.value().get(), dataset.value());

  // 3. Knockout: serve the SAME trained weights with every edge removed.
  data::MarketData knockout_market = market.value();
  auto empty = graph::EsellerGraph::Create(cfg.num_shops, {});
  GAIA_CHECK(empty.ok());
  knockout_market.graph = std::move(empty).value();
  auto knockout_ds = data::ForecastDataset::Create(knockout_market,
                                                   data::DatasetOptions{});
  GAIA_CHECK(knockout_ds.ok());

  auto with_edges = core::Evaluator::Evaluate(
      model.value().get(), dataset.value(), dataset.value().test_nodes());
  auto without_edges = core::Evaluator::Evaluate(
      model.value().get(), knockout_ds.value(),
      knockout_ds.value().test_nodes());

  TablePrinter table({"Inference graph", "MAE", "RMSE", "WAPE"});
  table.AddRow({"full e-seller graph",
                TablePrinter::FormatCount(with_edges.overall.mae),
                TablePrinter::FormatCount(with_edges.overall.rmse),
                TablePrinter::FormatDouble(with_edges.overall.wape, 4)});
  table.AddRow({"edges knocked out",
                TablePrinter::FormatCount(without_edges.overall.mae),
                TablePrinter::FormatCount(without_edges.overall.rmse),
                TablePrinter::FormatDouble(without_edges.overall.wape, 4)});
  table.Print(std::cout);

  const double degradation =
      100.0 * (without_edges.overall.mae - with_edges.overall.mae) /
      with_edges.overall.mae;
  std::cout << "\nKnocking out the supply-chain edges changes the trained"
               " model's MAE by "
            << TablePrinter::FormatDouble(degradation, 1)
            << "% — the ITA-GCN genuinely consumes the neighbour signal at"
               " inference time.\n";
  return 0;
}
