// Quickstart: simulate an e-seller market, train Gaia, and forecast GMV.
//
//   $ ./build/examples/quickstart
//
// Walks the whole public API surface in ~a minute: MarketSimulator ->
// ForecastDataset -> GaiaModel -> Trainer -> Evaluator.

#include <iostream>

#include "core/evaluator.h"
#include "core/gaia_model.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/market_simulator.h"
#include "util/table_printer.h"

int main() {
  using namespace gaia;

  // 1. Simulate a small e-seller market (the stand-in for production data).
  data::MarketConfig market_cfg;
  market_cfg.num_shops = 150;
  market_cfg.seed = 7;
  auto market = data::MarketSimulator(market_cfg).Generate();
  if (!market.ok()) {
    std::cerr << "market generation failed: " << market.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "Simulated market: " << market.value().graph.ToString()
            << "\n";

  // 2. Assemble model-ready features and splits.
  auto dataset =
      data::ForecastDataset::Create(market.value(), data::DatasetOptions{});
  if (!dataset.ok()) {
    std::cerr << dataset.status().ToString() << "\n";
    return 1;
  }
  const data::ForecastDataset& ds = dataset.value();
  std::cout << "Dataset: " << ds.num_nodes() << " shops, T="
            << ds.history_len() << " months, horizon T'=" << ds.horizon()
            << "\n";

  // 3. Build Gaia (FFL + TEL + 2x ITA-GCN) and train with MSE/Adam.
  core::GaiaConfig model_cfg;
  model_cfg.channels = 16;
  auto model = core::GaiaModel::Create(model_cfg, ds.history_len(),
                                       ds.horizon(), ds.temporal_dim(),
                                       ds.static_dim());
  if (!model.ok()) {
    std::cerr << model.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Gaia parameters: " << model.value()->ParameterCount() << "\n";

  core::TrainConfig train_cfg;
  train_cfg.max_epochs = 60;
  train_cfg.verbose = false;
  core::TrainResult trained =
      core::Trainer(train_cfg).Fit(model.value().get(), ds);
  std::cout << "Trained " << trained.epochs_run << " epochs in "
            << TablePrinter::FormatDouble(trained.seconds, 1)
            << "s; best val MSE "
            << TablePrinter::FormatDouble(trained.best_val_loss, 4) << "\n\n";

  // 4. Evaluate on held-out shops, paper metrics.
  core::EvaluationReport report = core::Evaluator::Evaluate(
      model.value().get(), ds, ds.test_nodes());
  TablePrinter table({"Month", "MAE", "RMSE", "MAPE"});
  const char* months[] = {"Oct", "Nov", "Dec"};
  for (size_t h = 0; h < report.per_month.size(); ++h) {
    const auto& m = report.per_month[h];
    table.AddRow({h < 3 ? months[h] : std::to_string(h),
                  TablePrinter::FormatCount(m.mae),
                  TablePrinter::FormatCount(m.rmse),
                  TablePrinter::FormatDouble(m.mape, 4)});
  }
  table.Print(std::cout);

  // 5. Forecast a single shop and compare with the simulated truth.
  const int32_t shop = ds.test_nodes().front();
  Rng rng(0);
  auto preds = model.value()->PredictNodes(ds, {shop}, false, &rng);
  std::cout << "\nShop " << shop << " (history length "
            << ds.series_length(shop) << " months):\n";
  for (int h = 0; h < ds.horizon(); ++h) {
    std::cout << "  month +" << h + 1 << ": forecast "
              << TablePrinter::FormatCount(
                     ds.Denormalize(shop, preds[0]->value.at(h)))
              << "  actual "
              << TablePrinter::FormatCount(ds.ActualGmv(shop, h)) << "\n";
  }
  return 0;
}
